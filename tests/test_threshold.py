"""Property suite for threshold (k-of-N), XOR, and aggregate pushdown.

Hypothesis-driven laws pin the compressed-domain kernels to a naive
numpy oracle across all three codecs:

- ``THRESHOLD(1, ...) == OR`` and ``THRESHOLD(N, ...) == AND``;
- ``XOR == (A OR B) ANDNOT (A AND B)``;
- monotonicity in ``k`` (raising the threshold never adds rows);
- the edge cases ``k <= 0`` (all rows), ``k > N`` (no rows), a single
  operand, and empty operand lists (rejected at construction).

The engine half asserts the *pushdown* contract: ``count`` /
``group_count`` answer from popcounts — their traces carry an
``aggregate.pushdown`` phase and no ``materialize`` phase — and agree
with the RID-materializing query path bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.roaring import RoaringBitmap
from repro.core.evaluation import threshold_all
from repro.engine import QueryEngine
from repro.errors import InvalidPredicateError
from repro.query.expression import Threshold, Xor, parse_expression
from repro.relation.relation import Relation
from repro.stats import ExecutionStats

pytestmark = pytest.mark.threshold


def _encode(codec: str, bools: np.ndarray):
    dense = BitVector.from_bools(bools)
    if codec == "dense":
        return dense
    if codec == "wah":
        return WahBitVector.from_bitvector(dense)
    return RoaringBitmap.from_bitvector(dense)


def _operands(nbits: int, n: int, seed: int) -> list[np.ndarray]:
    """n seeded boolean operand columns mixing densities and run shapes."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        density = (0.02, 0.4, 0.85, 0.999)[i % 4]
        bools = rng.random(nbits) < density
        if i % 2:
            # Runs: sorting a chunk produces long fills for WAH/Roaring.
            half = nbits // 2
            bools[:half] = np.sort(bools[:half])
        out.append(bools)
    return out


CODECS = ["dense", "wah", "roaring"]

# Lengths probing word/group/container boundaries: WAH groups are 31
# bits, dense words 64, Roaring chunks 65536.
LENGTHS = st.sampled_from([1, 31, 62, 64, 100, 1000, 65536, 70000])


class TestThresholdKernels:
    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=30, deadline=None)
    @given(
        nbits=LENGTHS,
        n=st.integers(min_value=1, max_value=5),
        k=st.integers(min_value=-1, max_value=7),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_counting_oracle(self, codec, nbits, n, k, seed):
        columns = _operands(nbits, n, seed)
        vectors = [_encode(codec, bools) for bools in columns]
        result = threshold_all(vectors, k, ExecutionStats())
        oracle = np.sum(columns, axis=0) >= k
        assert type(result) is type(vectors[0])
        np.testing.assert_array_equal(result.indices(), np.nonzero(oracle)[0])

    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=20, deadline=None)
    @given(
        nbits=LENGTHS,
        n=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_one_is_or_and_n_is_and(self, codec, nbits, n, seed):
        columns = _operands(nbits, n, seed)
        vectors = [_encode(codec, bools) for bools in columns]
        union = threshold_all(list(vectors), 1, ExecutionStats())
        inter = threshold_all(list(vectors), n, ExecutionStats())
        acc_or, acc_and = vectors[0], vectors[0]
        for v in vectors[1:]:
            acc_or = acc_or | v
            acc_and = acc_and & v
        np.testing.assert_array_equal(union.indices(), acc_or.indices())
        np.testing.assert_array_equal(inter.indices(), acc_and.indices())

    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=20, deadline=None)
    @given(
        nbits=LENGTHS,
        n=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_monotone_in_k(self, codec, nbits, n, seed):
        """Raising k only ever removes rows: results nest as k grows."""
        vectors = [_encode(codec, b) for b in _operands(nbits, n, seed)]
        previous = None
        for k in range(0, n + 2):
            rids = set(
                threshold_all(list(vectors), k, ExecutionStats())
                .indices()
                .tolist()
            )
            if previous is not None:
                assert rids <= previous, f"k={k} grew the result"
            previous = rids

    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=20, deadline=None)
    @given(
        nbits=LENGTHS,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_xor_is_or_minus_and(self, codec, nbits, seed):
        a_bools, b_bools = _operands(nbits, 2, seed)
        a, b = _encode(codec, a_bools), _encode(codec, b_bools)
        xor = a ^ b
        identity = (a | b) & ~(a & b)
        np.testing.assert_array_equal(xor.indices(), identity.indices())
        np.testing.assert_array_equal(
            xor.indices(), np.nonzero(a_bools ^ b_bools)[0]
        )

    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=20, deadline=None)
    @given(
        nbits=LENGTHS,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_and_count_is_fused_intersection_popcount(self, codec, nbits, seed):
        """The aggregate-pushdown primitive equals (a & b).count()."""
        a_bools, b_bools = _operands(nbits, 2, seed)
        a, b = _encode(codec, a_bools), _encode(codec, b_bools)
        assert a.and_count(b) == (a & b).count()
        assert a.and_count(b) == int(np.sum(a_bools & b_bools))

    def test_clamps_charge_no_ops(self):
        vectors = [_encode("wah", b) for b in _operands(1000, 3, 9)]
        for k, expected in ((0, 1000), (-2, 1000), (4, 0)):
            stats = ExecutionStats()
            result = threshold_all(list(vectors), k, stats)
            assert result.count() == expected
            assert stats.ors == 0
        charged = ExecutionStats()
        threshold_all(list(vectors), 2, charged)
        assert charged.ors == len(vectors) - 1

    def test_mixed_codecs_fall_back_to_counting(self):
        columns = _operands(500, 3, 21)
        vectors = [
            _encode(codec, bools)
            for codec, bools in zip(("dense", "wah", "roaring"), columns)
        ]
        result = threshold_all(vectors, 2, ExecutionStats())
        oracle = np.sum(columns, axis=0) >= 2
        np.testing.assert_array_equal(result.indices(), np.nonzero(oracle)[0])

    def test_threshold_node_rejects_bad_shapes(self):
        leaf = parse_expression("a = 1")
        with pytest.raises(InvalidPredicateError):
            Threshold(2, ())
        with pytest.raises(InvalidPredicateError):
            Threshold(1.5, (leaf,))
        with pytest.raises(InvalidPredicateError):
            parse_expression("atleast(2)")
        with pytest.raises(InvalidPredicateError):
            parse_expression("atleast(1.5, a = 1)")


class TestExpressionLayer:
    @pytest.fixture(scope="class")
    def relation(self):
        rng = np.random.default_rng(42)
        n = 4000
        return Relation.from_dict(
            "t",
            {
                "a": rng.integers(0, 6, n),
                "b": rng.integers(0, 4, n),
                "c": rng.integers(0, 50, n),
            },
        )

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize(
        "text",
        [
            "a = 1 xor b = 2",
            "atleast(2, a = 1, b <= 1, c < 25)",
            "threshold(1, a = 0, b = 3)",
            "atleast(3, a = 1, b <= 1, c < 25)",
            "atleast(0, a = 1, b = 2)",
            "atleast(9, a = 1, b = 2)",
            "not (a = 1 xor b = 2) and c >= 10",
            "atleast(2, a in (1, 3), b between 1 and 2, not c > 40)",
        ],
    )
    def test_engine_matches_mask(self, relation, codec, text):
        with QueryEngine(codec=codec) as engine:
            engine.register(relation)
            rids = engine.query(text).rids
        expression = parse_expression(text)
        np.testing.assert_array_equal(
            rids, np.nonzero(expression.mask(relation))[0]
        )

    def test_xor_precedence_binds_tighter_than_or(self):
        e = parse_expression("a = 1 or b = 2 xor c = 3")
        assert str(e) == "(a = 1 or (b = 2 xor c = 3))"
        assert isinstance(parse_expression("a = 1 xor b = 2 and c = 3"), Xor)

    def test_threshold_names_stay_usable_as_columns(self):
        """ATLEAST is contextual: only a call shape makes a threshold."""
        e = parse_expression("atleast = 3")
        assert e.attributes() == {"atleast"}

    def test_explain_walks_threshold_and_xor(self, relation):
        """EXPLAIN's cost prediction descends into the new node types."""
        with QueryEngine(codec="wah") as engine:
            engine.register(relation)
            report = engine.explain("atleast(2, a <= 4, b <= 2, c < 25) xor a = 3")
        predicates = [leaf["predicate"] for leaf in report.predicted_leaves]
        assert len(predicates) == 4
        assert report.matches_prediction


class TestAggregatePushdown:
    @pytest.fixture(scope="class")
    def relation(self):
        rng = np.random.default_rng(7)
        n = 5000
        return Relation.from_dict(
            "sales",
            {
                "region": rng.integers(0, 5, n),
                "status": rng.integers(0, 3, n),
                "qty": rng.integers(0, 40, n),
            },
        )

    EXPR = "atleast(2, region = 1, status = 0, qty <= 20)"

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("backend", ["inline", "threads", "processes"])
    def test_count_agrees_with_materializing_path(
        self, relation, codec, backend
    ):
        with QueryEngine(
            codec=codec, backend=backend, shards=3, max_workers=3
        ) as engine:
            engine.register(relation)
            result = engine.count(self.EXPR, trace=True)
            rids = engine.query(self.EXPR).rids
            assert result.count == len(rids)
            groups = engine.group_count(self.EXPR, "region", trace=True)
        values = relation.column("region").values
        for value, counted in groups.groups.items():
            assert counted == int(np.isin(rids, np.nonzero(values == value)[0]).sum())
        assert groups.count == len(rids)
        for outcome in (result, groups):
            names = [span.name for span in outcome.trace.spans]
            assert "aggregate.pushdown" in names
            assert "materialize" not in names

    def test_pushdown_never_materializes_rids(self, relation):
        """The op-count contract: counts come from popcounts alone."""
        with QueryEngine(codec="wah") as engine:
            engine.register(relation)
            query_result = engine.query(self.EXPR, trace=True)
            count_result = engine.count(self.EXPR, trace=True)
        query_spans = [s.name for s in query_result.trace.spans]
        count_spans = [s.name for s in count_result.trace.spans]
        assert "materialize" in query_spans  # the RID path does build RIDs
        assert "materialize" not in count_spans
        assert "aggregate.pushdown" in count_spans
        # Same logical work up to the final popcount: identical charged
        # bitmap ops on the evaluate phase.
        assert count_result.stats.ors == query_result.stats.ors
        assert count_result.stats.nots == query_result.stats.nots

    def test_shard_counts_merge_by_summation(self, relation):
        with QueryEngine(codec="dense", backend="inline") as inline:
            inline.register(relation)
            want = inline.count(self.EXPR).count
            want_groups = inline.group_count(self.EXPR, "status").groups
        for shards in (1, 2, 7):
            with QueryEngine(
                codec="dense", backend="processes", shards=shards
            ) as engine:
                engine.register(relation)
                assert engine.count(self.EXPR).count == want
                assert (
                    engine.group_count(self.EXPR, "status").groups
                    == want_groups
                )

    def test_group_count_unindexed_column_rejected(self, relation):
        with QueryEngine() as engine:
            engine.register(relation, attributes=["region", "qty"])
            with pytest.raises(Exception):
                engine.group_count("qty <= 20", "missing")


class TestGroupCountNulls:
    """Regression: group_count under ``nulls=`` tracking matches naive.

    A row whose grouping value is NULL must land in *no* group (SQL
    ``GROUP BY`` drops NULL keys from value groups), and the group sum —
    not the overall match count — reflects that.  The per-code equality
    bitmaps are null-masked inside ``evaluate``; a pushdown that instead
    partitioned the result bitmap arithmetically (e.g. subtracting
    complements) would resurrect the NULL rows and fail here.
    """

    @pytest.mark.parametrize("codec", CODECS)
    def test_null_rows_land_in_no_group(self, codec):
        from repro.core.index import BitmapIndex

        rng = np.random.default_rng(11)
        n = 2000
        region = rng.integers(0, 4, n)
        qty = rng.integers(0, 30, n)
        nulls = rng.random(n) < 0.15  # region is NULL on these rows
        relation = Relation.from_dict("t", {"region": region, "qty": qty})
        with QueryEngine(codec=codec) as engine:
            engine.register(relation)
            column = relation.column("region")
            # Pre-seed the registry with a nulls-tracking index for the
            # grouping column; the engine serves whatever is registered.
            engine.registry.get_or_build(
                ("t", "region"),
                lambda: BitmapIndex(
                    column.codes,
                    cardinality=column.cardinality,
                    nulls=nulls,
                    keep_values=False,
                ),
            )
            text = "atleast(1, qty <= 10, qty >= 28)"
            result = engine.group_count(text, "region")
        mask = (qty <= 10) | (qty >= 28)
        for value in range(4):
            naive = int((mask & (region == value) & ~nulls).sum())
            assert result.groups[value] == naive, value
        assert result.count == int((mask & ~nulls).sum())
        assert result.count < int(mask.sum())  # the NULL rows are gone
