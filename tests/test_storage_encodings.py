"""Storage-scheme round-trips for the non-range encodings.

The Section 9 experiments store range-encoded indexes; the storage layer
must serve all three encodings, including the base-2 equality component
whose only stored slot is 1 (the complement trick).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import OPERATORS, Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.stats import ExecutionStats
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import open_scheme, write_index

CARDINALITY = 24
ENCODINGS = list(EncodingScheme)
SCHEMES = ("BS", "cBS", "CS", "cCS", "IS", "cIS")


def _index(encoding: EncodingScheme, base: Base) -> BitmapIndex:
    rng = np.random.default_rng(31)
    values = rng.integers(0, CARDINALITY, 180)
    return BitmapIndex(values, CARDINALITY, base, encoding)


@pytest.mark.parametrize("scheme_name", SCHEMES)
@pytest.mark.parametrize("encoding", ENCODINGS)
class TestAllEncodingsAllSchemes:
    def test_round_trip(self, scheme_name, encoding):
        index = _index(encoding, Base((6, 4)))
        disk = SimulatedDisk()
        write_index(disk, "idx", index, scheme_name)
        reopened = open_scheme(disk, "idx")
        assert reopened.encoding is encoding
        for op in OPERATORS:
            for v in (0, 7, 23, -1, 24):
                got = evaluate(reopened, Predicate(op, v))
                assert got == index.naive_eval(op, v), (op, v)
                reopened.reset_cache()


class TestBaseTwoEqualityLayout:
    """The complement-trick component stores only slot 1."""

    def test_cs_column_layout(self):
        index = _index(EncodingScheme.EQUALITY, Base((2, 2, 6)))
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, "CS")
        # Components 2 and 3 have base 2: their files hold one column.
        stats = ExecutionStats()
        for component in (2, 3):
            bitmap = scheme.fetch(component, 1, stats)
            assert bitmap == index.components[component - 1].bitmap(1)
            scheme.reset_cache()

    def test_is_total_width(self):
        index = _index(EncodingScheme.EQUALITY, Base((2, 2, 6)))
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, "IS")
        # 6 + 1 + 1 stored bitmaps across components.
        assert scheme._total_width() == 8
        got = evaluate(scheme, Predicate("=", 5))
        assert got == index.naive_eval("=", 5)


class TestBufferPoolOverOtherEncodings:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_pinned_pool_correct(self, encoding):
        index = _index(encoding, Base((6, 4)))
        pool = BufferPool(index, capacity=3)
        for op in ("<=", "=", "!="):
            for v in (0, 11, 23):
                got = evaluate(pool, Predicate(op, v))
                assert got == index.naive_eval(op, v)

    def test_pool_over_storage_scheme_equality(self):
        index = _index(EncodingScheme.EQUALITY, Base((2, 12)))
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, "cBS")
        pool = BufferPool(scheme, capacity=4)
        got = evaluate(pool, Predicate("=", 3))
        assert got == index.naive_eval("=", 3)
        assert pool.hits + pool.misses > 0
