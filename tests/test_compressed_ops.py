"""Tests for compressed-domain WAH algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.bitvector import BitVector
from repro.bitmaps.compressed import WahBitVector
from repro.bitmaps.wah import (
    wah_and,
    wah_encode,
    wah_not,
    wah_or,
    wah_popcount,
    wah_xor,
)
from repro.errors import CorruptFileError, LengthMismatchError
from repro.workloads.generators import clustered_values


def _pair(nbits: int, seed: int) -> tuple[BitVector, BitVector]:
    rng = np.random.default_rng(seed)
    return (
        BitVector.from_bools(rng.random(nbits) < 0.4),
        BitVector.from_bools(rng.random(nbits) < 0.6),
    )


class TestRawOperations:
    def test_and_or_xor_match_uncompressed(self):
        from repro.bitmaps.wah import wah_decode

        a, b = _pair(1000, 1)
        ca, cb = wah_encode(a.to_bytes()), wah_encode(b.to_bytes())
        for compressed_op, plain in (
            (wah_and, a & b),
            (wah_or, a | b),
            (wah_xor, a ^ b),
        ):
            got = BitVector.from_bytes(wah_decode(compressed_op(ca, cb)), 1000)
            assert got == plain

    def test_popcount(self):
        a, _ = _pair(997, 2)
        assert wah_popcount(wah_encode(a.to_bytes())) == a.count()

    def test_not_respects_bit_length(self):
        a, _ = _pair(997, 3)
        inverted = wah_not(wah_encode(a.to_bytes()), nbits=997)
        assert wah_popcount(inverted) == 997 - a.count()

    def test_length_mismatch_rejected(self):
        a = wah_encode(bytes(10))
        b = wah_encode(bytes(11))
        with pytest.raises(CorruptFileError):
            wah_and(a, b)

    def test_fill_runs_stay_compressed(self):
        zeros = wah_encode(bytes(100_000))
        ones = wah_encode(b"\xff" * 100_000)
        result = wah_or(zeros, ones)
        # One fill run (plus maybe a padding literal): tiny payload.
        assert len(result) < 32

    def test_operand_corruption_detected(self):
        a = wah_encode(bytes(100))
        with pytest.raises(CorruptFileError):
            wah_and(a, b"\x00\x01")


class TestWahBitVector:
    def test_round_trip(self):
        a, _ = _pair(500, 4)
        compressed = WahBitVector.from_bitvector(a)
        assert compressed.to_bitvector() == a
        assert compressed.nbits == 500

    def test_algebra_matches_bitvector(self):
        a, b = _pair(800, 5)
        ca = WahBitVector.from_bitvector(a)
        cb = WahBitVector.from_bitvector(b)
        assert (ca & cb).to_bitvector() == (a & b)
        assert (ca | cb).to_bitvector() == (a | b)
        assert (ca ^ cb).to_bitvector() == (a ^ b)
        assert (~ca).to_bitvector() == ~a

    def test_count_and_any(self):
        a, _ = _pair(800, 6)
        ca = WahBitVector.from_bitvector(a)
        assert ca.count() == a.count()
        assert ca.any() == a.any()
        empty = WahBitVector.from_bitvector(BitVector.zeros(800))
        assert not empty.any()

    def test_length_mismatch(self):
        ca = WahBitVector.from_bitvector(BitVector.zeros(10))
        cb = WahBitVector.from_bitvector(BitVector.zeros(11))
        with pytest.raises(LengthMismatchError):
            ca & cb

    def test_type_mismatch(self):
        ca = WahBitVector.from_bitvector(BitVector.zeros(10))
        with pytest.raises(TypeError):
            ca & BitVector.zeros(10)  # type: ignore[operator]

    def test_equality(self):
        a, b = _pair(300, 7)
        assert WahBitVector.from_bitvector(a) == WahBitVector.from_bitvector(a)
        assert WahBitVector.from_bitvector(a) != WahBitVector.from_bitvector(b)
        assert WahBitVector.from_bitvector(a) != "nope"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(WahBitVector.from_bitvector(BitVector.zeros(8)))

    def test_repr(self):
        ca = WahBitVector.from_bitvector(BitVector.zeros(64))
        assert "compressed bytes" in repr(ca)

    def test_run_structured_ops_stay_small(self):
        values = clustered_values(200_000, 50, run_length=128, seed=1)
        a = WahBitVector.from_bitvector(BitVector.from_bools(values <= 20))
        b = WahBitVector.from_bitvector(BitVector.from_bools(values <= 40))
        result = a & b
        # Nested predicates: the result is as compressible as the inputs.
        assert result.compressed_bytes <= a.compressed_bytes + b.compressed_bytes
        assert result.count() == int((values <= 20).sum())


@settings(max_examples=80, deadline=None)
@given(
    nbits=st.integers(1, 600),
    seed_a=st.integers(0, 2**31),
    seed_b=st.integers(0, 2**31),
)
def test_compressed_algebra_property(nbits, seed_a, seed_b):
    """Property: every compressed op equals its uncompressed counterpart."""
    a = BitVector.from_bools(np.random.default_rng(seed_a).random(nbits) < 0.5)
    b = BitVector.from_bools(np.random.default_rng(seed_b).random(nbits) < 0.5)
    ca = WahBitVector.from_bitvector(a)
    cb = WahBitVector.from_bitvector(b)
    assert (ca & cb).to_bitvector() == (a & b)
    assert (ca | cb).to_bitvector() == (a | b)
    assert (ca ^ cb).to_bitvector() == (a ^ b)
    assert (~ca).to_bitvector() == ~a
    assert ca.count() == a.count()
