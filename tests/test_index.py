"""Tests for the BitmapIndex object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex, BitmapSource
from repro.errors import InvalidBaseError, ValueOutOfRangeError
from repro.stats import ExecutionStats

from conftest import make_index


class TestConstruction:
    def test_defaults_to_single_component(self, paper_values):
        index = BitmapIndex(paper_values, cardinality=9)
        assert index.base == Base((9,))
        assert index.num_bitmaps == 8  # range-encoded: C - 1

    def test_paper_figure_3_shape(self, paper_index):
        # Base-<3,3> decomposition reduces 9 bitmaps to 4 stored (range).
        assert paper_index.num_bitmaps == 4
        assert len(paper_index.components) == 2

    def test_value_list_index_shape(self, paper_values):
        # Figure 1: single-component equality-encoded = 9 bitmaps.
        index = BitmapIndex(
            paper_values, 9, encoding=EncodingScheme.EQUALITY
        )
        assert index.num_bitmaps == 9

    def test_space_matches_theorem_for_many_bases(self, rng):
        values = rng.integers(0, 60, 100)
        for base in (Base((60,)), Base((8, 8)), Base((4, 4, 4)), Base.binary(60)):
            for encoding in EncodingScheme:
                index = BitmapIndex(values, 60, base, encoding)
                assert index.num_bitmaps == costmodel.space(base, encoding)
                assert index.num_bitmaps == index.expected_bitmaps()

    def test_base_must_cover_cardinality(self, paper_values):
        with pytest.raises(InvalidBaseError):
            BitmapIndex(paper_values, cardinality=9, base=Base((2, 4)))

    def test_values_must_be_in_range(self):
        with pytest.raises(ValueOutOfRangeError):
            BitmapIndex(np.array([0, 9]), cardinality=9)
        with pytest.raises(ValueOutOfRangeError):
            BitmapIndex(np.array([-1, 0]), cardinality=9)

    def test_rejects_2d_values(self):
        with pytest.raises(ValueOutOfRangeError):
            BitmapIndex(np.zeros((2, 2), dtype=int), cardinality=4)

    def test_rejects_tiny_cardinality(self):
        with pytest.raises(InvalidBaseError):
            BitmapIndex(np.array([0]), cardinality=1)

    def test_size_in_bits(self, paper_index):
        assert paper_index.size_in_bits == 4 * 10

    def test_repr(self, paper_index):
        text = repr(paper_index)
        assert "N=10" in text and "C=9" in text

    def test_implements_bitmap_source_protocol(self, paper_index):
        assert isinstance(paper_index, BitmapSource)


class TestFetch:
    def test_fetch_records_scan_and_bytes(self, paper_index):
        stats = ExecutionStats()
        bitmap = paper_index.fetch(1, 0, stats)
        assert stats.scans == 1
        assert stats.bytes_read == bitmap.nbytes

    def test_fetch_contents(self, paper_values, paper_index):
        stats = ExecutionStats()
        # Component 1 slot 0 of base <3,3>: digit_1 <= 0.
        bitmap = paper_index.fetch(1, 0, stats)
        expected = (paper_values % 3) == 0
        assert np.array_equal(bitmap.to_bools(), expected)

    def test_stored_slots(self, paper_index):
        assert paper_index.stored_slots(1) == (0, 1)
        assert paper_index.stored_slots(2) == (0, 1)


class TestBitMatrix:
    def test_shape(self, paper_index):
        matrix = paper_index.bit_matrix()
        assert matrix.shape == (10, 4)

    def test_columns_match_bitmaps(self, paper_index):
        matrix = paper_index.bit_matrix()
        stats = ExecutionStats()
        assert np.array_equal(matrix[:, 0], paper_index.fetch(1, 0, stats).to_bools())
        assert np.array_equal(matrix[:, 3], paper_index.fetch(2, 1, stats).to_bools())


class TestNulls:
    def test_nonnull_bitmap(self):
        values = np.array([3, 1, 4, 1, 5])
        nulls = np.array([False, True, False, False, True])
        index = BitmapIndex(values, 9, nulls=nulls)
        assert index.nonnull is not None
        assert index.nonnull.indices().tolist() == [0, 2, 3]

    def test_naive_eval_excludes_nulls(self):
        values = np.array([3, 1, 4, 1, 5])
        nulls = np.array([False, True, False, False, True])
        index = BitmapIndex(values, 9, nulls=nulls)
        result = index.naive_eval("<=", 4)
        assert result.indices().tolist() == [0, 2, 3]

    def test_null_mask_shape_checked(self):
        with pytest.raises(ValueOutOfRangeError):
            BitmapIndex(np.array([1, 2]), 4, nulls=np.array([True]))


class TestForColumn:
    def test_string_column(self):
        column = np.array(["cherry", "apple", "banana", "apple"])
        index = BitmapIndex.for_column(column)
        assert index.cardinality == 3
        assert list(index.value_dictionary) == ["apple", "banana", "cherry"]
        # "apple" has rank 0: equality on rank 0 matches rows 1 and 3.
        assert index.naive_eval("=", 0).indices().tolist() == [1, 3]

    def test_float_column_preserves_order(self):
        column = np.array([2.5, 0.1, 9.75, 0.1])
        index = BitmapIndex.for_column(column)
        assert index.cardinality == 3
        assert index.rank_of(2.5) == 1

    def test_requires_two_distinct_values(self):
        with pytest.raises(InvalidBaseError):
            BitmapIndex.for_column(np.array([7, 7, 7]))

    def test_rank_of_absent_value(self):
        index = BitmapIndex.for_column(np.array([10, 20, 30]))
        assert index.rank_of(15) == 1  # first dictionary value >= 15


class TestNaiveEval:
    def test_all_operators(self, paper_values, paper_index):
        for op, expected in [
            ("<", paper_values < 2),
            ("<=", paper_values <= 2),
            ("=", paper_values == 2),
            ("!=", paper_values != 2),
            (">=", paper_values >= 2),
            (">", paper_values > 2),
        ]:
            assert np.array_equal(
                paper_index.naive_eval(op, 2).to_bools(), expected
            )

    def test_unknown_operator(self, paper_index):
        with pytest.raises(ValueOutOfRangeError):
            paper_index.naive_eval("~", 2)

    def test_unavailable_without_values(self):
        index = make_index()
        index._values = None
        with pytest.raises(RuntimeError):
            index.naive_eval("=", 0)

    def test_keep_values_false(self, paper_values):
        index = BitmapIndex(paper_values, 9, keep_values=False)
        with pytest.raises(RuntimeError):
            index.naive_eval("=", 0)
