"""Tests for the experiment measurement helpers."""

from __future__ import annotations

import pytest

from repro.core.decomposition import Base
from repro.core.evaluation import Predicate
from repro.experiments.measure import aggregate_costs, average_scans_and_ops
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import write_index
from repro.workloads.queries import full_query_space

from conftest import make_index


@pytest.fixture
def index():
    return make_index(num_rows=100, cardinality=20, base=Base((5, 4)), seed=2)


class TestAggregateCosts:
    def test_counts_queries(self, index):
        totals, count, elapsed = aggregate_costs(
            index, full_query_space(20)
        )
        assert count == 120
        assert totals.scans > 0
        assert elapsed == 0.0  # not timed

    def test_timed_mode(self, index):
        _, _, elapsed = aggregate_costs(
            index, full_query_space(20), timed=True
        )
        assert elapsed > 0.0

    def test_empty_queries(self, index):
        totals, count, elapsed = aggregate_costs(index, [])
        assert count == 0
        assert totals.scans == 0

    def test_reset_cache_charges_per_query(self, index):
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, "CS")
        queries = [Predicate("<=", 7), Predicate("<=", 7)]
        with_reset, _, _ = aggregate_costs(
            scheme, queries, reset_cache=True
        )
        scheme.reset_cache()
        without_reset, _, _ = aggregate_costs(
            scheme, queries, reset_cache=False
        )
        # Without per-query resets the second query reuses the cached
        # component scans, reading fewer bytes.
        assert without_reset.bytes_read < with_reset.bytes_read


class TestAverageScansAndOps:
    def test_matches_totals(self, index):
        scans, ops = average_scans_and_ops(index, full_query_space(20))
        totals, count, _ = aggregate_costs(index, full_query_space(20))
        assert scans == pytest.approx(totals.scans / count)
        assert ops == pytest.approx(totals.ops / count)

    def test_empty_is_zero(self, index):
        assert average_scans_and_ops(index, []) == (0.0, 0.0)

    def test_algorithm_forwarded(self, index):
        opt_scans, _ = average_scans_and_ops(
            index, full_query_space(20), "range_eval_opt"
        )
        base_scans, _ = average_scans_and_ops(
            index, full_query_space(20), "range_eval"
        )
        assert opt_scans < base_scans
