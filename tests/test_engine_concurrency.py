"""Stress and correctness tests for the concurrent :class:`QueryEngine`.

A mixed batch of predicates runs from many threads against one engine;
every result must be bit-identical to the sequential ground truth, the
shared cache's counters must stay consistent under contention
(``hits + misses == fetches == scans + buffer_hits``), and racing first
queries must build each attribute's index exactly once.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.engine import IndexSpec, QueryEngine
from repro.errors import EngineConfigError
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.storage.disk import DiskModel

NUM_ROWS = 8_000
OPS = ("<", "<=", "=", "!=", ">=", ">")


@pytest.fixture(scope="module")
def relation() -> Relation:
    rng = np.random.default_rng(42)
    return Relation.from_dict(
        "lineitem",
        {
            "quantity": rng.integers(0, 50, NUM_ROWS),
            "discount": np.round(rng.random(NUM_ROWS), 2),  # float dictionary
            "supplier": rng.integers(0, 400, NUM_ROWS),
        },
    )


def mixed_batch(relation: Relation, count: int, seed: int) -> list[AttributePredicate]:
    """A seeded mixed workload across attributes, operators, and values."""
    rng = np.random.default_rng(seed)
    attributes = sorted(relation.columns)
    batch = []
    for _ in range(count):
        attribute = attributes[int(rng.integers(0, len(attributes)))]
        op = OPS[int(rng.integers(0, len(OPS)))]
        column = relation.column(attribute)
        value = column.values[int(rng.integers(0, column.num_rows))]
        batch.append(AttributePredicate(attribute, op, value))
    return batch


def make_engine(relation: Relation, **kwargs) -> QueryEngine:
    engine = QueryEngine(**kwargs)
    engine.register(relation, components=2)
    return engine


def assert_counters_consistent(engine: QueryEngine) -> None:
    """The invariant the serving layer's accounting rests on."""
    snap = engine.snapshot()
    cache = snap["cache"]
    stats = snap["stats"]
    assert cache["hits"] + cache["misses"] == engine.cache.fetches
    # Every fetch either hit the shared cache (a buffer hit) or fell
    # through to the index (a recorded scan).
    assert cache["hits"] == stats["buffer_hits"]
    assert cache["misses"] == stats["scans"]


class TestBatchCorrectness:
    def test_concurrent_equals_sequential_baseline(self, relation):
        batch = mixed_batch(relation, 60, seed=1)
        sequential = make_engine(relation).query_batch(batch, workers=1)
        concurrent = make_engine(relation).query_batch(batch, workers=8)
        assert len(sequential) == len(concurrent) == len(batch)
        for pred, seq, conc in zip(batch, sequential, concurrent):
            assert np.array_equal(seq.rids, conc.rids), str(pred)
            truth = relation.scan(pred.attribute, pred.op, pred.value)
            assert np.array_equal(conc.rids, truth), str(pred)

    def test_batch_preserves_input_order(self, relation):
        batch = mixed_batch(relation, 40, seed=2)
        engine = make_engine(relation)
        results = engine.query_batch(batch, workers=4)
        for pred, result in zip(batch, results):
            assert np.array_equal(
                result.rids, relation.scan(pred.attribute, pred.op, pred.value)
            )

    def test_explicit_relation_pairs(self, relation):
        engine = make_engine(relation)
        pred = AttributePredicate("quantity", "<=", 10)
        results = engine.query_batch([("lineitem", pred), pred], workers=2)
        assert np.array_equal(results[0].rids, results[1].rids)


class TestContention:
    def test_counters_consistent_under_contention(self, relation):
        engine = make_engine(relation, cache_capacity=32)
        batch = mixed_batch(relation, 120, seed=3)
        engine.query_batch(batch, workers=8)
        snap = engine.snapshot()
        assert snap["queries"] == len(batch)
        assert snap["failures"] == 0
        assert engine.cache.fetches > 0
        assert_counters_consistent(engine)

    def test_many_threads_sharing_one_engine(self, relation):
        """External threads calling query() directly, not via query_batch."""
        engine = make_engine(relation, cache_capacity=64)
        batch = mixed_batch(relation, 80, seed=4)
        truths = [relation.scan(p.attribute, p.op, p.value) for p in batch]
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(engine.query, pred) for pred in batch]
            results = [f.result() for f in futures]
        for result, truth in zip(results, truths):
            assert np.array_equal(result.rids, truth)
        assert engine.metrics.queries == len(batch)
        assert_counters_consistent(engine)

    def test_racing_first_queries_build_index_once(self, relation):
        engine = make_engine(relation)
        pred = AttributePredicate("supplier", "=", 7)
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(engine.query, pred) for _ in range(16)]
            for f in futures:
                f.result()
        assert engine.registry.snapshot()["builds"] == 1
        assert engine.registry.snapshot()["reuses"] == 15

    def test_zero_capacity_cache_disables_caching(self, relation):
        engine = make_engine(relation, cache_capacity=0)
        batch = mixed_batch(relation, 30, seed=5)
        results = engine.query_batch(batch, workers=4)
        for pred, result in zip(batch, results):
            assert np.array_equal(
                result.rids, relation.scan(pred.attribute, pred.op, pred.value)
            )
        snap = engine.snapshot()["cache"]
        assert snap["hits"] == 0
        assert snap["size"] == 0
        assert snap["misses"] == engine.cache.fetches
        assert_counters_consistent(engine)

    def test_small_cache_evicts_but_stays_correct(self, relation):
        engine = make_engine(relation, cache_capacity=2)
        batch = mixed_batch(relation, 50, seed=6)
        results = engine.query_batch(batch, workers=4)
        for pred, result in zip(batch, results):
            assert np.array_equal(
                result.rids, relation.scan(pred.attribute, pred.op, pred.value)
            )
        assert engine.cache.evictions > 0
        assert len(engine.cache) <= 2
        assert_counters_consistent(engine)


class TestMetricsAndWarm:
    def test_snapshot_shape_and_percentiles(self, relation):
        engine = make_engine(relation)
        engine.query_batch(mixed_batch(relation, 25, seed=7), workers=4)
        snap = engine.snapshot()
        latency = snap["latency_ms"]
        assert snap["queries"] == 25
        assert 0 < latency["p50"] <= latency["p95"] <= latency["max"]
        assert latency["mean"] > 0
        assert snap["stats"]["ops"] >= snap["stats"]["ands"]
        assert snap["registry"]["indexes"] == 3

    def test_warm_prebuilds_all_indexes(self, relation):
        engine = make_engine(relation)
        assert engine.warm() == 3
        assert engine.registry.snapshot()["builds"] == 3
        engine.query_batch(mixed_batch(relation, 10, seed=8), workers=2)
        assert engine.registry.snapshot()["builds"] == 3  # no rebuilds

    def test_reset_cache_and_metrics(self, relation):
        engine = make_engine(relation)
        engine.query_batch(mixed_batch(relation, 10, seed=9), workers=2)
        engine.reset_cache()
        engine.reset_metrics()
        assert engine.cache.fetches == 0
        assert len(engine.cache) == 0
        assert engine.metrics.queries == 0

    def test_storage_model_records_modeled_wait(self, relation):
        engine = make_engine(
            relation, storage=DiskModel(), io_time_scale=1e-6, cache_capacity=64
        )
        engine.query(AttributePredicate("quantity", "<=", 20))
        stats = engine.metrics.stats
        assert stats.scans > 0
        assert stats.io_seconds > 0

    def test_io_model_shim_warns_and_still_models(self, relation):
        QueryEngine._warned_io_model = False
        with pytest.warns(DeprecationWarning, match="io_model= keyword"):
            engine = make_engine(
                relation,
                io_model=DiskModel(),
                io_time_scale=1e-6,
                cache_capacity=64,
            )
        engine.query(AttributePredicate("quantity", "<=", 20))
        assert engine.metrics.stats.io_seconds > 0
        # The shim warns once per process, not per construction.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_engine(relation, io_model=DiskModel())

    def test_storage_and_io_model_are_mutually_exclusive(self, relation):
        with pytest.raises(EngineConfigError, match="not both"):
            QueryEngine(storage=DiskModel(), io_model=DiskModel())


class TestConfigErrors:
    def test_unregistered_relation_rejected(self, relation):
        engine = make_engine(relation)
        with pytest.raises(EngineConfigError):
            engine.query(AttributePredicate("quantity", "=", 1), relation="orders")

    def test_no_relation_registered(self):
        with pytest.raises(EngineConfigError):
            QueryEngine().query(AttributePredicate("quantity", "=", 1))

    def test_unserved_attribute_rejected(self, relation):
        engine = QueryEngine()
        engine.register(relation, attributes=["quantity"])
        with pytest.raises(EngineConfigError):
            engine.query(AttributePredicate("supplier", "=", 1))

    def test_bad_worker_counts_rejected(self, relation):
        with pytest.raises(EngineConfigError):
            QueryEngine(max_workers=0)
        engine = make_engine(relation)
        with pytest.raises(EngineConfigError):
            engine.query_batch([AttributePredicate("quantity", "=", 1)] * 2, workers=0)

    def test_override_must_target_served_attribute(self, relation):
        engine = QueryEngine()
        with pytest.raises(EngineConfigError):
            engine.register(
                relation,
                attributes=["quantity"],
                overrides={"supplier": IndexSpec()},
            )

    def test_per_attribute_override_applies(self, relation):
        engine = QueryEngine()
        engine.register(
            relation,
            attributes=["quantity", "supplier"],
            components=2,
            overrides={
                "quantity": IndexSpec(
                    base=Base((50,)), encoding=EncodingScheme.EQUALITY
                )
            },
        )
        pred = AttributePredicate("quantity", "=", 7)
        result = engine.query(pred)
        assert np.array_equal(result.rids, relation.scan("quantity", "=", 7))
        index = engine.registry.peek(("lineitem", "quantity"))
        assert index.encoding is EncodingScheme.EQUALITY
