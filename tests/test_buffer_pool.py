"""Tests for the bitmap buffer pool (pinned and LRU policies)."""

from __future__ import annotations

import pytest

from repro.core import costmodel
from repro.core.buffering import BufferAssignment, optimal_assignment
from repro.core.decomposition import Base
from repro.core.evaluation import Predicate, evaluate
from repro.errors import BufferConfigError
from repro.stats import ExecutionStats
from repro.storage.buffer import BufferPool, _pinned_slots
from repro.storage.disk import SimulatedDisk
from repro.storage.schemes import write_index
from repro.workloads.queries import full_query_space

from conftest import make_index

BASE = Base((8, 7))
CARDINALITY = 50


@pytest.fixture
def index():
    return make_index(num_rows=150, cardinality=CARDINALITY, base=BASE, seed=11)


class TestPinnedPolicy:
    def test_results_unchanged(self, index):
        pool = BufferPool(index, capacity=5)
        for predicate in full_query_space(CARDINALITY):
            got = evaluate(pool, predicate)
            assert got == index.naive_eval(predicate.op, predicate.value)

    def test_hits_recorded(self, index):
        pool = BufferPool(index, capacity=5)
        total = ExecutionStats()
        for predicate in full_query_space(CARDINALITY):
            stats = ExecutionStats()
            evaluate(pool, predicate, stats=stats)
            total.merge(stats)
        assert total.buffer_hits > 0
        assert pool.hits == total.buffer_hits
        assert 0 < pool.hit_rate < 1

    def test_measured_scans_close_to_eq5(self, index):
        """The pinned pool's measured average tracks the Eq. 5 model."""
        for m in (0, 2, 5, 9):
            pool = BufferPool(index, capacity=m)
            total = 0
            count = 0
            for predicate in full_query_space(CARDINALITY):
                stats = ExecutionStats()
                evaluate(pool, predicate, stats=stats)
                total += stats.scans
                count += 1
            measured = total / count
            assignment = optimal_assignment(BASE, m)
            model = costmodel.time_range_buffered(BASE, assignment.counts)
            assert measured == pytest.approx(model, abs=0.35)

    def test_explicit_assignment(self, index):
        assignment = BufferAssignment(BASE, (6, 0))
        pool = BufferPool(index, assignment=assignment)
        stats = ExecutionStats()
        evaluate(pool, Predicate("=", 0), stats=stats)
        assert stats.scans + stats.buffer_hits >= 1

    def test_assignment_base_must_match(self, index):
        assignment = BufferAssignment(Base((10, 5)), (0, 0))
        with pytest.raises(BufferConfigError):
            BufferPool(index, assignment=assignment)

    def test_needs_assignment_or_capacity(self, index):
        with pytest.raises(BufferConfigError):
            BufferPool(index)

    def test_wraps_storage_scheme(self, index):
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, "cBS")
        pool = BufferPool(scheme, capacity=6)
        for v in (0, 10, 49):
            got = evaluate(pool, Predicate("<=", v))
            assert got == index.naive_eval("<=", v)
            pool.reset_cache()

    def test_preload_not_charged_to_disk_queries(self, index):
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, "BS")
        reads_before = disk.stats.reads
        BufferPool(scheme, capacity=4)
        # Preload reads happen but are not charged to any query stats.
        assert disk.stats.reads == reads_before + 4


class TestLRUPolicy:
    def test_results_unchanged(self, index):
        pool = BufferPool(index, capacity=4, policy="lru")
        for predicate in full_query_space(CARDINALITY):
            got = evaluate(pool, predicate)
            assert got == index.naive_eval(predicate.op, predicate.value)

    def test_eviction(self, index):
        pool = BufferPool(index, capacity=1, policy="lru")
        stats = ExecutionStats()
        pool.fetch(1, 0, stats)
        pool.fetch(1, 0, stats)  # hit
        pool.fetch(1, 1, stats)  # evicts (1, 0)
        pool.fetch(1, 0, stats)  # miss again
        assert pool.hits == 1
        assert pool.misses == 3

    def test_zero_capacity_never_caches(self, index):
        pool = BufferPool(index, capacity=0, policy="lru")
        stats = ExecutionStats()
        pool.fetch(1, 0, stats)
        pool.fetch(1, 0, stats)
        assert pool.hits == 0

    def test_zero_capacity_is_pure_passthrough(self, index):
        """Regression: capacity == 0 must mean 'no caching', not a 1-ish LRU.

        Every fetch is a recorded miss served by the source, nothing is
        ever stored, and results stay correct — the engine's shared cache
        relies on these semantics to disable caching cleanly.
        """
        pool = BufferPool(index, capacity=0, policy="lru")
        fetches = 0
        for predicate in full_query_space(CARDINALITY):
            stats = ExecutionStats()
            got = evaluate(pool, predicate, stats=stats)
            assert got == index.naive_eval(predicate.op, predicate.value)
            assert stats.buffer_hits == 0
            fetches += stats.scans
        assert len(pool._lru) == 0
        assert pool.hits == 0
        assert pool.misses == fetches
        assert pool.hit_rate == 0.0

    def test_capacity_required(self, index):
        with pytest.raises(BufferConfigError):
            BufferPool(index, policy="lru")

    def test_concurrent_fetches_keep_counters_consistent(self, index):
        """The LRU pool is shared by engine workers; counters must not race."""
        from concurrent.futures import ThreadPoolExecutor

        pool = BufferPool(index, capacity=3, policy="lru")
        slots = [(1, s) for s in index.stored_slots(1)]
        slots += [(2, s) for s in index.stored_slots(2)]
        per_thread = 50

        def storm(seed: int) -> int:
            stats = ExecutionStats()
            for k in range(per_thread):
                component, slot = slots[(seed + k) % len(slots)]
                bitmap = pool.fetch(component, slot, stats)
                assert bitmap == index.components[component - 1].bitmap(slot)
            return per_thread

        with ThreadPoolExecutor(max_workers=8) as executor:
            total = sum(executor.map(storm, range(8)))
        assert pool.hits + pool.misses == total
        assert len(pool._lru) <= 3

    def test_repeated_workload_hits_grow(self, index):
        pool = BufferPool(index, capacity=20, policy="lru")
        for _ in range(2):
            for predicate in full_query_space(CARDINALITY):
                evaluate(pool, predicate)
        assert pool.hit_rate > 0.4


class TestPolicyValidation:
    def test_unknown_policy(self, index):
        with pytest.raises(BufferConfigError):
            BufferPool(index, capacity=1, policy="clock")


class TestPinnedSlotSelection:
    def test_subset_of_stored(self):
        slots = _pinned_slots((0, 1, 2, 3, 4, 5), 3)
        assert slots <= {0, 1, 2, 3, 4, 5}
        assert len(slots) == 3

    def test_all_when_count_exceeds(self):
        assert _pinned_slots((0, 1), 5) == {0, 1}

    def test_zero(self):
        assert _pinned_slots((0, 1), 0) == set()
