"""Tests for the query observability layer: traces, EXPLAIN, unified API.

Covers the tentpole invariants:

- tracing is opt-in: untraced results carry ``trace=None`` and identical
  counters to traced runs (the instrumentation only observes);
- every layer emits its spans (fetch/op/phase at minimum; cache/buffer
  on the cached paths);
- EXPLAIN's predicted scan count (the paper's cost model) equals the
  traced actual scan count on an uncached run — for both the dense and
  the WAH-compressed execution paths — and equals ``scans + hits`` on a
  warm cache;
- the unified ``QueryEngine.query`` accepts all three query forms and the
  expression path routes every bitmap fetch through the shared cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.engine.engine import QueryEngine
from repro.query.executor import AccessPath, bitmap_index_for, execute
from repro.query.expression import parse_expression
from repro.query.optimizer import Catalog, execute_plan
from repro.query.options import QueryOptions, normalize_query
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.trace import QueryTrace, explain

NUM_ROWS = 2000


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def relation(rng) -> Relation:
    return Relation.from_dict(
        "sales",
        {
            "region": rng.integers(0, 8, NUM_ROWS),
            "quantity": rng.integers(0, 50, NUM_ROWS),
        },
    )


def make_engine(relation, **kwargs) -> QueryEngine:
    engine = QueryEngine(**kwargs)
    engine.register(relation)
    return engine


# ----------------------------------------------------------------------
# Tracing basics
# ----------------------------------------------------------------------


class TestQueryTrace:
    def test_untraced_result_has_no_trace(self, relation):
        engine = make_engine(relation)
        result = engine.query("quantity <= 25")
        assert result.trace is None
        assert result.stats.trace is None

    def test_traced_predicate_has_spans_of_each_layer(self, relation):
        engine = make_engine(relation, cache_capacity=0)
        result = engine.query("quantity <= 25", trace=True)
        trace = result.trace
        assert trace is not None
        kinds = {span.kind for span in trace.spans}
        assert "plan" in kinds  # engine dispatch
        assert "phase" in kinds  # translate / evaluate / materialize
        assert "fetch" in kinds  # physical index fetch
        assert trace.count("fetch") == result.stats.scans

    def test_traced_expression_has_op_spans(self, relation):
        engine = make_engine(relation, cache_capacity=0)
        result = engine.query(
            "quantity <= 25 and (region = 3 or region = 7)", trace=True
        )
        trace = result.trace
        assert trace is not None
        assert trace.count("op") == result.stats.ops
        assert trace.count("fetch") == result.stats.scans

    def test_trace_does_not_change_counters(self, relation):
        plain = make_engine(relation, cache_capacity=0)
        traced = make_engine(relation, cache_capacity=0)
        text = "quantity between 10 and 30 and region in (1, 2, 5)"
        a = plain.query(text)
        b = traced.query(text, trace=True)
        assert np.array_equal(a.rids, b.rids)
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_cache_hits_emit_cache_spans(self, relation):
        engine = make_engine(relation, cache_capacity=64)
        engine.query("quantity <= 25")  # warm the cache
        result = engine.query("quantity <= 25", trace=True)
        assert result.stats.buffer_hits > 0
        assert result.trace.count("cache") == result.stats.buffer_hits
        assert result.stats.scans == 0

    def test_format_and_as_dict(self, relation):
        engine = make_engine(relation, cache_capacity=0)
        trace = engine.query("quantity <= 25", trace=True).trace
        text = trace.format()
        assert "trace:" in text and "fetch" in text
        payload = trace.as_dict()
        assert payload["label"] == "quantity <= 25"
        assert payload["summary"]["fetch"]["count"] == trace.count("fetch")
        assert len(payload["spans"]) == len(trace.spans)

    def test_nested_spans_track_depth(self):
        trace = QueryTrace(label="t")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = trace.spans  # recorded on exit, inner first
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0
        assert outer.duration >= inner.duration


class TestExecutorAndOptimizerTracing:
    def test_executor_options_trace(self, relation):
        index = bitmap_index_for(relation, "quantity")
        result = execute(
            relation,
            AttributePredicate("quantity", "<=", 25),
            AccessPath.BITMAP,
            index=index,
            options=QueryOptions(trace=True, verify=True),
        )
        names = [span.name for span in result.trace.spans]
        assert "translate" in names
        assert "materialize" in names
        assert "verify" in names

    def test_optimizer_records_plan_choice(self, relation):
        catalog = Catalog(
            bitmap_indexes={
                "quantity": bitmap_index_for(relation, "quantity"),
                "region": bitmap_index_for(relation, "region"),
            }
        )
        predicates = [
            AttributePredicate("quantity", "<=", 10),
            AttributePredicate("region", "=", 3),
        ]
        result, choice = execute_plan(
            relation, predicates, catalog, options=QueryOptions(trace=True)
        )
        plan_spans = result.trace.spans_of("plan")
        selected = [s for s in plan_spans if s.name == "plan.selected"]
        assert len(selected) == 1
        assert selected[0].attrs["plan"] == choice.plan
        assert selected[0].attrs["alternatives"] == choice.alternatives


# ----------------------------------------------------------------------
# The unified query API
# ----------------------------------------------------------------------


class TestUnifiedQueryAPI:
    def test_three_forms_agree_and_match_ground_truth(self, relation):
        engine = make_engine(relation)
        text = "quantity <= 25"
        as_string = engine.query(text)
        as_predicate = engine.query(AttributePredicate("quantity", "<=", 25))
        as_expression = engine.query(parse_expression(text))
        truth = np.nonzero(relation.column("quantity").values <= 25)[0]
        for result in (as_string, as_predicate, as_expression):
            assert np.array_equal(result.rids, truth)

    def test_single_comparison_takes_predicate_fast_path(self):
        q = normalize_query("quantity <= 25")
        assert isinstance(q, AttributePredicate)

    def test_boolean_expression_matches_ground_truth(self, relation):
        engine = make_engine(relation)
        text = "quantity <= 25 and (region = 3 or region = 7)"
        result = engine.query(text)
        quantity = relation.column("quantity").values
        region = relation.column("region").values
        truth = np.nonzero(
            (quantity <= 25) & ((region == 3) | (region == 7))
        )[0]
        assert np.array_equal(result.rids, truth)

    def test_expression_fetches_route_through_shared_cache(self, relation):
        engine = make_engine(relation, cache_capacity=256)
        text = "quantity <= 25 and region in (1, 2)"
        cold = engine.query(text)
        assert cold.stats.scans > 0
        warm = engine.query(text)
        assert warm.stats.scans == 0
        # every fetch of the warm run is a hit; the cold run may already
        # have intra-query hits when leaves share a bitmap slot
        assert warm.stats.buffer_hits == cold.stats.scans + cold.stats.buffer_hits
        assert engine.cache.hits >= warm.stats.buffer_hits
        assert np.array_equal(cold.rids, warm.rids)

    def test_query_batch_mixes_forms(self, relation):
        engine = make_engine(relation)
        results = engine.query_batch(
            [
                "quantity <= 25",
                AttributePredicate("region", "=", 3),
                ("sales", "quantity > 40 or region = 0"),
            ],
            workers=2,
        )
        assert len(results) == 3
        truth = np.nonzero(relation.column("region").values == 3)[0]
        assert np.array_equal(results[1].rids, truth)

    def test_options_verify_catches_nothing_on_correct_path(self, relation):
        engine = make_engine(relation)
        result = engine.query(
            "quantity <= 25 and region = 3",
            options=QueryOptions(verify=True),
        )
        assert result.count > 0

    def test_submit_aliases_are_gone(self, relation):
        engine = make_engine(relation)
        assert not hasattr(engine, "submit")
        assert not hasattr(engine, "submit_batch")
        predicate = AttributePredicate("quantity", "<=", 25)
        one = engine.query(predicate)
        batch = engine.query_batch([predicate, predicate], workers=1)
        assert np.array_equal(one.rids, batch[0].rids)

    def test_legacy_verify_keyword_is_rejected(self, relation):
        index = bitmap_index_for(relation, "quantity")
        with pytest.raises(TypeError):
            execute(
                relation,
                AttributePredicate("quantity", "<=", 25),
                AccessPath.BITMAP,
                index=index,
                verify=True,
            )

    def test_options_carry_verify(self, relation):
        index = bitmap_index_for(relation, "quantity")
        result = execute(
            relation,
            AttributePredicate("quantity", "<=", 25),
            AccessPath.BITMAP,
            index=index,
            options=QueryOptions(verify=True, trace=True),
        )
        truth = np.nonzero(relation.column("quantity").values <= 25)[0]
        assert np.array_equal(result.rids, truth)
        assert result.trace is not None
        names = [span.name for span in result.trace.spans]
        assert "verify" in names


# ----------------------------------------------------------------------
# EXPLAIN: predicted (cost model) vs. actual (traced counters)
# ----------------------------------------------------------------------


class TestExplain:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_predicted_equals_actual_scans_uncached(self, relation, compressed):
        # The acceptance invariant: on an uncached run, the paper's
        # cost-model scan count equals the traced actual scan count —
        # identically for dense and WAH-compressed execution.
        engine = make_engine(
            relation, cache_capacity=0, compressed=compressed
        )
        report = engine.explain("quantity <= 25")
        assert report.predicted_scans is not None
        assert report.actual["buffer_hits"] == 0
        assert report.actual["scans"] == report.predicted_scans
        assert report.matches_prediction
        assert report.compressed is compressed
        assert report.trace is not None
        assert report.trace.count("fetch") == report.actual["scans"]

    @pytest.mark.parametrize("compressed", [False, True])
    def test_multi_component_range_predicate(self, rng, compressed):
        relation = Relation.from_dict(
            "wide", {"a": rng.integers(0, 100, NUM_ROWS)}
        )
        engine = QueryEngine(cache_capacity=0, compressed=compressed)
        engine.register(relation, base=Base((10, 10)))
        report = engine.explain("a <= 37")
        assert report.predicted_scans is not None
        assert report.predicted_scans > 1  # multi-component range scan
        assert report.actual["scans"] == report.predicted_scans

    def test_warm_cache_invariant_scans_plus_hits(self, relation):
        engine = make_engine(relation, cache_capacity=256)
        engine.query("quantity <= 25")  # warm
        report = engine.explain("quantity <= 25")
        assert report.actual["scans"] == 0
        assert report.actual["buffer_hits"] == report.predicted_scans
        assert report.effective_fetches == report.predicted_scans
        assert report.matches_prediction

    def test_expression_report_sums_leaves(self, relation):
        engine = make_engine(relation, cache_capacity=0)
        report = engine.explain("quantity between 10 and 20 and region in (1, 2)")
        # between -> 2 leaves, in -> 2 leaves
        assert len(report.predicted_leaves) == 4
        assert report.mode == "expression"
        assert report.predicted_scans == sum(
            leaf["scans"] for leaf in report.predicted_leaves
        )
        assert report.effective_fetches == report.predicted_scans

    def test_report_format_mentions_prediction_and_verdict(self, relation):
        engine = make_engine(relation, cache_capacity=0)
        report = engine.explain("quantity <= 25")
        text = report.format()
        assert "EXPLAIN" in text
        assert "predicted (cost model)" in text
        assert "verdict: cost model matches observation" in text
        assert str(report) == text
        payload = report.as_dict()
        assert payload["predicted_scans"] == report.predicted_scans
        assert payload["trace"]["label"] == "quantity <= 25"

    def test_explain_does_not_pollute_metrics(self, relation):
        engine = make_engine(relation)
        engine.explain("quantity <= 25")
        assert engine.metrics.snapshot()["queries"] == 0
        engine.query("quantity <= 25")
        assert engine.metrics.snapshot()["queries"] == 1

    def test_free_explain_over_raw_indexes(self, relation):
        indexes = {
            "quantity": bitmap_index_for(relation, "quantity"),
            "region": bitmap_index_for(relation, "region"),
        }
        report = explain(relation, "quantity <= 25 and region = 3", indexes)
        assert report.predicted_scans is not None
        assert report.effective_fetches == report.predicted_scans
        truth = np.nonzero(
            (relation.column("quantity").values <= 25)
            & (relation.column("region").values == 3)
        )[0]
        assert report.rows == len(truth)

    def test_interval_encoding_reports_no_prediction(self, rng):
        from repro.core.encoding import EncodingScheme

        relation = Relation.from_dict("t", {"a": rng.integers(0, 20, 500)})
        engine = QueryEngine(cache_capacity=0)
        engine.register(relation, encoding=EncodingScheme.INTERVAL)
        report = engine.explain("a <= 7")
        assert report.predicted_scans is None
        assert not report.matches_prediction
        assert any("interval" in d for d in report.divergences)


# ----------------------------------------------------------------------
# Metrics export (engine level)
# ----------------------------------------------------------------------


class TestEngineMetricsExport:
    def test_snapshot_breakdowns(self, relation):
        engine = make_engine(relation)
        engine.query("quantity <= 25")
        engine.query("quantity <= 25 and region = 3")
        snap = engine.snapshot()
        assert snap["queries"] == 2
        assert snap["by_relation"]["sales"]["queries"] == 2
        assert snap["by_access_path"]["bitmap"]["queries"] == 1
        assert snap["by_access_path"]["expression"]["queries"] == 1

    def test_snapshot_text_exposition(self, relation):
        engine = make_engine(relation)
        engine.query("quantity <= 25")
        engine.query("region = 3 or region = 7")
        text = engine.snapshot_text()
        assert text.endswith("\n")
        assert "repro_queries_total 2" in text
        assert 'repro_relation_queries_total{relation="sales"} 2' in text
        assert 'repro_access_path_queries_total{access_path="bitmap"} 1' in text
        assert (
            'repro_access_path_queries_total{access_path="expression"} 1' in text
        )
        assert "repro_scans_total" in text
        assert "repro_cache_entries" in text
        assert 'repro_relation_cache_misses_total{relation="sales"}' in text
        # every exposition line is "name[{labels}] value" or a comment
        for line in text.strip().splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2

    def test_cache_snapshot_groups_by_relation(self, relation):
        engine = make_engine(relation, cache_capacity=64)
        engine.query("quantity <= 25")
        engine.query("quantity <= 25")
        groups = engine.cache.snapshot()["groups"]
        assert "sales" in groups
        assert groups["sales"]["hits"] > 0
        assert groups["sales"]["misses"] > 0
