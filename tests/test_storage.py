"""Tests for the simulated disk and the BS/CS/IS storage schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import OPERATORS, Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.errors import CorruptFileError, FileMissingError, StorageError
from repro.relation.projection import ProjectionIndex
from repro.stats import ExecutionStats
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.schemes import open_scheme, write_index

from conftest import make_index

SCHEME_NAMES = ("BS", "cBS", "CS", "cCS", "IS", "cIS")


@pytest.fixture
def index() -> BitmapIndex:
    return make_index(num_rows=200, cardinality=30, base=Base((6, 5)), seed=4)


class TestSimulatedDisk:
    def test_write_read_round_trip(self):
        disk = SimulatedDisk()
        disk.write("a/b", b"hello")
        assert disk.read("a/b") == b"hello"

    def test_read_accounting(self):
        disk = SimulatedDisk()
        disk.write("f", b"12345")
        disk.read("f")
        disk.read("f")
        assert disk.stats.reads == 2
        assert disk.stats.bytes_read == 10
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 5

    def test_missing_file(self):
        disk = SimulatedDisk()
        with pytest.raises(FileMissingError):
            disk.read("nope")
        with pytest.raises(FileMissingError):
            disk.delete("nope")
        with pytest.raises(FileMissingError):
            disk.size_of("nope")

    def test_list_files_prefix(self):
        disk = SimulatedDisk()
        disk.write("x/a", b"")
        disk.write("x/b", b"")
        disk.write("y/c", b"")
        assert disk.list_files("x/") == ["x/a", "x/b"]

    def test_delete(self):
        disk = SimulatedDisk()
        disk.write("f", b"1")
        disk.delete("f")
        assert not disk.exists("f")

    def test_total_bytes(self):
        disk = SimulatedDisk()
        disk.write("x/a", b"123")
        disk.write("x/b", b"4567")
        assert disk.total_bytes("x/") == 7

    def test_corrupt_byte_bounds(self):
        disk = SimulatedDisk()
        disk.write("f", b"abc")
        with pytest.raises(IndexError):
            disk.corrupt_byte("f", 3)

    def test_disk_model_seconds(self):
        model = DiskModel(seek_seconds=0.01, bandwidth_bytes_per_second=1e6)
        assert model.seconds(2, 1_000_000) == pytest.approx(1.02)
        assert model.decompress_seconds(6_000_000) == pytest.approx(1.0)


class TestSimulatedDiskFaultInjection:
    """The direct failure helpers and the ``disk.read`` fault seam."""

    def test_truncate(self):
        disk = SimulatedDisk()
        disk.write("f", b"123456")
        disk.truncate("f", 2)
        assert disk.read("f") == b"12"

    def test_truncate_missing(self):
        with pytest.raises(FileMissingError):
            SimulatedDisk().truncate("nope", 0)

    def test_corrupt_byte(self):
        disk = SimulatedDisk()
        disk.write("f", b"\x00\x00")
        disk.corrupt_byte("f", 1)
        assert disk.read("f") == b"\x00\xff"

    def test_corrupt_byte_custom_mask(self):
        disk = SimulatedDisk()
        disk.write("f", b"\x0f")
        disk.corrupt_byte("f", 0, xor_with=0x01)
        assert disk.read("f") == b"\x0e"

    def test_corrupt_byte_missing(self):
        with pytest.raises(FileMissingError):
            SimulatedDisk().corrupt_byte("nope", 0)

    def test_injected_read_error_is_one_shot(self):
        from repro.errors import InjectedFaultError
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec("disk.read", "error", nth=1)])
        disk = SimulatedDisk(fault_plan=plan)
        disk.write("f", b"data")
        with pytest.raises(InjectedFaultError):
            disk.read("f")
        assert disk.read("f") == b"data"
        assert [i.seam for i in plan.injections] == ["disk.read"]

    def test_injected_torn_read(self):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec("disk.read", "torn", nth=1)])
        disk = SimulatedDisk(fault_plan=plan)
        disk.write("f", b"123456")
        assert disk.read("f") == b"123"
        assert disk.read("f") == b"123456"

    def test_injected_corrupt_read_is_deterministic(self):
        from repro.faults import FaultPlan, FaultSpec

        def damaged(seed):
            plan = FaultPlan([FaultSpec("disk.read", "corrupt", nth=1)], seed=seed)
            disk = SimulatedDisk(fault_plan=plan)
            disk.write("f", bytes(range(32)))
            return disk.read("f")

        assert damaged(5) == damaged(5)
        assert damaged(5) != bytes(range(32))

    def test_match_filter_scopes_fault_to_path(self):
        from repro.errors import InjectedFaultError
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec("disk.read", "error", match="idx/")])
        disk = SimulatedDisk(fault_plan=plan)
        disk.write("idx/a", b"1")
        disk.write("other", b"2")
        assert disk.read("other") == b"2"
        with pytest.raises(InjectedFaultError):
            disk.read("idx/a")


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
class TestSchemeRoundTrip:
    def test_evaluation_matches_in_memory(self, index, scheme_name):
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, scheme_name)
        for op in OPERATORS:
            for v in (0, 3, 15, 29, -1, 30):
                got = evaluate(scheme, Predicate(op, v))
                assert got == index.naive_eval(op, v), (scheme_name, op, v)
                scheme.reset_cache()

    def test_reopen_from_manifest(self, index, scheme_name):
        disk = SimulatedDisk()
        write_index(disk, "idx", index, scheme_name)
        reopened = open_scheme(disk, "idx")
        assert reopened.base == index.base
        assert reopened.encoding == index.encoding
        assert reopened.nbits == index.nbits
        got = evaluate(reopened, Predicate("<=", 11))
        assert got == index.naive_eval("<=", 11)

    def test_fetch_matches_in_memory_bitmaps(self, index, scheme_name):
        disk = SimulatedDisk()
        scheme = write_index(disk, "idx", index, scheme_name)
        for component in (1, 2):
            for slot in index.stored_slots(component):
                stats = ExecutionStats()
                from_disk = scheme.fetch(component, slot, stats)
                in_memory = index.components[component - 1].bitmap(slot)
                assert from_disk == in_memory
                assert stats.scans == 1

    def test_nulls_round_trip(self, scheme_name):
        index = make_index(
            num_rows=120, cardinality=20, base=Base((5, 4)), nulls=True, seed=6
        )
        disk = SimulatedDisk()
        write_index(disk, "idx", index, scheme_name)
        reopened = open_scheme(disk, "idx")
        assert reopened.nonnull == index.nonnull
        for op in ("<=", "!="):
            assert evaluate(reopened, Predicate(op, 7)) == index.naive_eval(op, 7)
            reopened.reset_cache()


class TestSchemeShapes:
    def test_file_counts(self, index):
        disk = SimulatedDisk()
        bs = write_index(disk, "bs", index, "BS")
        cs = write_index(disk, "cs", index, "CS")
        is_ = write_index(disk, "is", index, "IS")
        assert bs.file_count == index.num_bitmaps  # one file per bitmap
        assert cs.file_count == index.base.n  # one file per component
        assert is_.file_count == 1

    def test_uncompressed_sizes_match_bit_volume(self, index):
        from repro.storage.schemes import HEADER_SIZE

        disk = SimulatedDisk()
        bs = write_index(disk, "bs", index, "BS")
        payload = bs.stored_bytes - HEADER_SIZE * bs.file_count
        assert payload == index.num_bitmaps * ((index.nbits + 7) // 8)

    def test_compressed_smaller_on_compressible_data(self):
        # Sorted values make every bitmap run-structured.
        values = np.sort(np.random.default_rng(0).integers(0, 30, 2000))
        index = BitmapIndex(values, 30, Base((6, 5)))
        disk = SimulatedDisk()
        bs = write_index(disk, "bs", index, "BS")
        cbs = write_index(disk, "cbs", index, "cBS")
        assert cbs.stored_bytes < bs.stored_bytes

    def test_cs_reads_whole_component_per_query(self, index):
        disk = SimulatedDisk()
        cs = write_index(disk, "cs", index, "CS")
        stats = ExecutionStats()
        cs.fetch(1, 0, stats)
        component_file = disk.size_of("cs/c1")
        assert stats.bytes_read == component_file
        # Second fetch from the same component reuses the cached scan.
        cs.fetch(1, 1, stats)
        assert stats.bytes_read == component_file
        assert stats.files_opened == 1
        # After the per-query reset, the file is read again.
        cs.reset_cache()
        cs.fetch(1, 0, stats)
        assert stats.files_opened == 2

    def test_unknown_scheme_rejected(self, index):
        with pytest.raises(StorageError):
            write_index(SimulatedDisk(), "x", index, "ZS")

    def test_c_prefix_selects_zlib(self, index):
        disk = SimulatedDisk()
        scheme = write_index(disk, "x", index, "cBS")
        assert scheme.codec.name == "zlib"

    def test_explicit_codec_override(self, index):
        disk = SimulatedDisk()
        scheme = write_index(disk, "x", index, "BS", codec="wah")
        assert scheme.codec.name == "wah"
        got = evaluate(scheme, Predicate("<=", 11))
        assert got == index.naive_eval("<=", 11)

    def test_cs_missing_slot_rejected(self, index):
        disk = SimulatedDisk()
        cs = write_index(disk, "cs", index, "CS")
        with pytest.raises(StorageError):
            cs.fetch(1, 5, ExecutionStats())  # base 5: slots 0..3

    def test_is_missing_slot_rejected(self, index):
        disk = SimulatedDisk()
        is_ = write_index(disk, "is", index, "IS")
        with pytest.raises(StorageError):
            is_.fetch(2, 9, ExecutionStats())


class TestFailureInjection:
    def test_truncated_bitmap_file(self, index):
        disk = SimulatedDisk()
        bs = write_index(disk, "idx", index, "BS")
        # A <= 0 reads slot 0 of component 1 (file idx/c1_s0).
        disk.truncate("idx/c1_s0", disk.size_of("idx/c1_s0") - 3)
        with pytest.raises(CorruptFileError):
            evaluate(bs, Predicate("<=", 0))

    def test_corrupted_magic(self, index):
        disk = SimulatedDisk()
        bs = write_index(disk, "idx", index, "BS")
        disk.corrupt_byte("idx/c1_s0", 0)
        with pytest.raises(CorruptFileError):
            evaluate(bs, Predicate("<=", 0))

    def test_corrupted_compressed_payload(self, index):
        disk = SimulatedDisk()
        cbs = write_index(disk, "idx", index, "cBS")
        disk.corrupt_byte("idx/c1_s0", 40)  # inside the zlib payload
        with pytest.raises(CorruptFileError):
            evaluate(cbs, Predicate("<=", 0))

    def test_corrupt_manifest(self, index):
        disk = SimulatedDisk()
        write_index(disk, "idx", index, "BS")
        disk.write("idx/manifest", b"{not json")
        with pytest.raises(CorruptFileError):
            open_scheme(disk, "idx")

    def test_manifest_missing_fields(self, index):
        disk = SimulatedDisk()
        write_index(disk, "idx", index, "BS")
        disk.write("idx/manifest", b"{}")
        with pytest.raises(CorruptFileError):
            open_scheme(disk, "idx")

    def test_truncated_cs_payload(self, index):
        disk = SimulatedDisk()
        cs = write_index(disk, "cs", index, "CS")
        disk.truncate("cs/c1", disk.size_of("cs/c1") - 1)
        with pytest.raises(CorruptFileError):
            cs.fetch(1, 0, ExecutionStats())


class TestProjectionIdentity:
    def test_is_layout_of_binary_equality_index_is_projection(self):
        """Paper §9.1: an all-base-2 IS index is the projection index."""
        rng = np.random.default_rng(2)
        values = rng.integers(0, 16, 100)
        index = BitmapIndex(
            values, 16, Base.binary(16), EncodingScheme.EQUALITY
        )
        matrix = index.bit_matrix()
        projection = ProjectionIndex(values, 16)
        assert np.array_equal(matrix, projection.binary_rows())
