"""Tests for the extension ablation experiments."""

from __future__ import annotations

from repro.experiments import ablation_buffering, ablation_codecs, ablation_encodings


class TestEncodingAblation:
    def test_three_fronts_present(self):
        (result,) = ablation_encodings.run(quick=True, cardinalities=(36,))
        encodings = {row[0] for row in result.rows}
        assert encodings == {"range", "equality", "interval"}

    def test_interval_extends_low_space_region(self):
        (result,) = ablation_encodings.run(quick=True, cardinalities=(100,))
        interval_single = next(
            row for row in result.rows
            if row[0] == "interval" and "," not in row[1]
        )
        range_single = next(
            row for row in result.rows
            if row[0] == "range" and "," not in row[1]
        )
        assert interval_single[2] < range_single[2]
        assert interval_single[3] > range_single[3]


class TestCodecAblation:
    def test_deflate_wins_on_uniform(self):
        result = ablation_codecs.run(quick=True, num_rows=5000)
        ratios = {(row[0], row[1]): row[3] for row in result.rows}
        assert ratios[("uniform", "zlib")] < ratios[("uniform", "wah")]

    def test_runs_compress_dramatically(self):
        result = ablation_codecs.run(quick=True, num_rows=5000)
        ratios = {(row[0], row[1]): row[3] for row in result.rows}
        for codec in ("zlib", "wah"):
            assert ratios[("sorted", codec)] < ratios[("uniform", codec)]


class TestUpdatesAblation:
    def test_value_list_cheapest_single_component(self):
        from repro.experiments import ablation_updates

        result = ablation_updates.run(quick=True, cardinality=30, updates=150)
        rows = {(row[0], row[2]): row[4] for row in result.rows}
        assert rows[(1, "equality")] < rows[(1, "range")]
        assert rows[(1, "interval")] < rows[(1, "range")]

    def test_decomposition_reduces_range_update_cost(self):
        from repro.experiments import ablation_updates

        result = ablation_updates.run(quick=True, cardinality=30, updates=150)
        rows = {(row[0], row[2]): row[4] for row in result.rows}
        assert rows[(3, "range")] < rows[(1, "range")]


class TestBufferingAblation:
    def test_pinned_tracks_model(self):
        result = ablation_buffering.run(
            quick=True, cardinality=36, buffers=(0, 2, 4), repeats=1
        )
        for row in result.rows:
            assert abs(row[1] - row[3]) <= 0.3

    def test_zero_buffer_policies_identical(self):
        result = ablation_buffering.run(
            quick=True, cardinality=36, buffers=(0,), repeats=1
        )
        (row,) = result.rows
        assert row[1] == row[2]
