"""Tests for the query layer: predicates, plans, the verifying executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.errors import InvalidPredicateError
from repro.query.executor import (
    AccessPath,
    VerificationError,
    bitmap_index_for,
    conjunctive_select,
    execute,
)
from repro.query.plans import (
    plan_p1_cost,
    plan_p2_cost,
    plan_p3_bitmap_cost,
    plan_p3_ridlist_cost,
    ridlist_crossover_selectivity,
)
from repro.query.predicate import AttributePredicate, parse_predicate
from repro.relation.projection import ProjectionIndex
from repro.relation.relation import Relation
from repro.relation.rid_index import RIDListIndex


@pytest.fixture
def relation(rng) -> Relation:
    return Relation.from_dict(
        "sales",
        {
            "quantity": rng.integers(1, 51, 500),
            "price": np.round(rng.uniform(1.0, 100.0, 500), 2),
        },
    )


class TestParsePredicate:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("quantity <= 25", AttributePredicate("quantity", "<=", 25)),
            ("quantity < 25", AttributePredicate("quantity", "<", 25)),
            ("price >= 9.5", AttributePredicate("price", ">=", 9.5)),
            ("name = alice", AttributePredicate("name", "=", "alice")),
            ("x != 0", AttributePredicate("x", "!=", 0)),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_predicate(text) == expected

    def test_longest_operator_wins(self):
        assert parse_predicate("a <= 1").op == "<="

    def test_unparseable(self):
        with pytest.raises(InvalidPredicateError):
            parse_predicate("quantity")
        with pytest.raises(InvalidPredicateError):
            parse_predicate("<= 25")

    def test_invalid_operator_in_constructor(self):
        with pytest.raises(InvalidPredicateError):
            AttributePredicate("a", "==", 1)

    def test_str(self):
        assert str(parse_predicate("a > 2")) == "a > 2"


class TestExecutor:
    @pytest.mark.parametrize(
        "text",
        ["quantity <= 25", "quantity = 13", "quantity > 48",
         "quantity != 1", "quantity < 1", "quantity >= 50",
         "quantity <= 200", "quantity = 0"],
    )
    def test_all_paths_agree(self, relation, text):
        predicate = parse_predicate(text)
        column = relation.column("quantity")
        bitmap = bitmap_index_for(relation, "quantity", base=Base((8, 7)))
        rid = RIDListIndex(column.values)
        projection = ProjectionIndex(column.codes, column.cardinality)
        results = [
            execute(relation, predicate, AccessPath.SCAN),
            execute(relation, predicate, AccessPath.BITMAP, bitmap),
            execute(relation, predicate, AccessPath.RID_LIST, rid),
            execute(relation, predicate, AccessPath.PROJECTION, projection),
        ]
        counts = {r.count for r in results}
        assert len(counts) == 1
        for r in results[1:]:
            assert np.array_equal(r.rids, results[0].rids)

    def test_float_column_through_bitmap(self, relation):
        predicate = parse_predicate("price <= 50.0")
        bitmap = bitmap_index_for(relation, "price")
        result = execute(relation, predicate, AccessPath.BITMAP, bitmap)
        assert result.count == len(relation.scan("price", "<=", 50.0))

    def test_missing_index_rejected(self, relation):
        with pytest.raises(InvalidPredicateError):
            execute(relation, parse_predicate("quantity = 1"), AccessPath.BITMAP)

    def test_wrong_index_type_rejected(self, relation):
        bitmap = bitmap_index_for(relation, "quantity")
        with pytest.raises(InvalidPredicateError):
            execute(
                relation, parse_predicate("quantity = 1"),
                AccessPath.RID_LIST, bitmap,
            )

    def test_verification_catches_wrong_index(self, relation):
        """An index built on the wrong column fails verification."""
        wrong = bitmap_index_for(relation, "price")
        with pytest.raises(VerificationError):
            execute(
                relation, parse_predicate("quantity <= 10"),
                AccessPath.BITMAP, wrong,
            )

    def test_stats_populated(self, relation):
        bitmap = bitmap_index_for(relation, "quantity")
        result = execute(
            relation, parse_predicate("quantity <= 10"), AccessPath.BITMAP, bitmap
        )
        assert result.stats.scans >= 1

    def test_scan_bytes_accounting(self, relation):
        result = execute(relation, parse_predicate("quantity <= 10"))
        assert result.stats.bytes_read == relation.num_rows * relation.row_bytes


class TestConjunctiveSelect:
    def test_two_predicates(self, relation):
        indexes = {
            "quantity": bitmap_index_for(relation, "quantity"),
            "price": bitmap_index_for(relation, "price"),
        }
        predicates = [
            parse_predicate("quantity <= 25"),
            parse_predicate("price <= 50.0"),
        ]
        result = conjunctive_select(relation, predicates, indexes)
        mask = (relation.column("quantity").values <= 25) & (
            relation.column("price").values <= 50.0
        )
        assert result.count == int(mask.sum())

    def test_single_predicate(self, relation):
        indexes = {"quantity": bitmap_index_for(relation, "quantity")}
        result = conjunctive_select(
            relation, [parse_predicate("quantity = 7")], indexes
        )
        assert result.count == len(relation.scan("quantity", "=", 7))

    def test_empty_predicates_rejected(self, relation):
        with pytest.raises(InvalidPredicateError):
            conjunctive_select(relation, [], {})

    def test_missing_index_rejected(self, relation):
        with pytest.raises(InvalidPredicateError):
            conjunctive_select(
                relation, [parse_predicate("quantity = 7")], {}
            )


class TestPlanCosts:
    def test_p1(self, relation):
        cost = plan_p1_cost(relation)
        assert cost.bytes_read == relation.num_rows * relation.row_bytes

    def test_p2(self, relation):
        cost = plan_p2_cost(relation, index_bytes=1000, qualifying_rows=50)
        assert cost.bytes_read == 1000 + 50 * relation.row_bytes

    def test_p3_bitmap(self):
        cost = plan_p3_bitmap_cost(num_rows=800, bitmaps_scanned_per_predicate=1)
        assert cost.bytes_read == 2 * 100

    def test_p3_ridlist(self, rng):
        values = rng.integers(0, 10, 100)
        idx = RIDListIndex(values)
        cost = plan_p3_ridlist_cost([idx, idx], [("=", 3), ("<=", 5)])
        expected = idx.bytes_for("=", 3) + idx.bytes_for("<=", 5)
        assert cost.bytes_read == expected

    def test_p3_ridlist_arity_checked(self, rng):
        idx = RIDListIndex(rng.integers(0, 10, 10))
        with pytest.raises(ValueError):
            plan_p3_ridlist_cost([idx], [("=", 3), ("=", 4)])

    def test_crossover_is_one_thirty_second(self):
        assert ridlist_crossover_selectivity() == pytest.approx(1 / 32)
        assert ridlist_crossover_selectivity(2) == pytest.approx(1 / 16)

    def test_plan_cost_str(self, relation):
        assert "P1" in str(plan_p1_cost(relation))
