"""Tests for bit-sliced aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.bitvector import BitVector
from repro.core.aggregation import BitSlicedAggregator, EmptyFoundsetError
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.errors import ValueOutOfRangeError


@pytest.fixture
def values(rng) -> np.ndarray:
    return rng.integers(0, 1000, 500)


@pytest.fixture
def aggregator(values) -> BitSlicedAggregator:
    return BitSlicedAggregator.from_values(values)


class TestConstruction:
    def test_slice_count_is_bit_width(self, aggregator):
        assert aggregator.num_slices == 10  # values < 1000 < 1024

    def test_rejects_negative_values(self):
        with pytest.raises(ValueOutOfRangeError):
            BitSlicedAggregator.from_values(np.array([-1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueOutOfRangeError):
            BitSlicedAggregator.from_values(np.zeros((2, 2), dtype=int))

    def test_all_zero_column(self):
        agg = BitSlicedAggregator.from_values(np.zeros(10, dtype=int))
        assert agg.num_slices == 1
        assert agg.sum() == 0
        assert agg.maximum() == 0

    def test_from_binary_equality_index(self, values):
        index = BitmapIndex(
            values, 1024, Base.binary(1024), EncodingScheme.EQUALITY
        )
        agg = BitSlicedAggregator.from_index(index)
        assert agg.sum() == int(values.sum())
        assert agg.maximum() == int(values.max())

    def test_from_index_rejects_range_encoding(self, values):
        index = BitmapIndex(values, 1024, Base.binary(1024))
        with pytest.raises(ValueOutOfRangeError):
            BitSlicedAggregator.from_index(index)

    def test_from_index_rejects_non_binary_base(self, values):
        index = BitmapIndex(
            values, 1024, Base((32, 32)), EncodingScheme.EQUALITY
        )
        with pytest.raises(ValueOutOfRangeError):
            BitSlicedAggregator.from_index(index)


class TestFullColumnAggregates:
    def test_sum(self, values, aggregator):
        assert aggregator.sum() == int(values.sum())

    def test_count(self, values, aggregator):
        assert aggregator.count() == len(values)

    def test_average(self, values, aggregator):
        assert aggregator.average() == pytest.approx(float(values.mean()))

    def test_min_max(self, values, aggregator):
        assert aggregator.minimum() == int(values.min())
        assert aggregator.maximum() == int(values.max())


class TestFoundsetAggregates:
    def test_sum_over_predicate_foundset(self, values, aggregator):
        index = BitmapIndex(values, 1000, Base((32, 32)))
        foundset = evaluate(index, Predicate("<=", 300))
        expected = int(values[values <= 300].sum())
        assert aggregator.sum(foundset) == expected

    def test_min_max_over_foundset(self, values, aggregator):
        mask = values >= 500
        foundset = BitVector.from_bools(mask)
        assert aggregator.minimum(foundset) == int(values[mask].min())
        assert aggregator.maximum(foundset) == int(values[mask].max())

    def test_average_over_foundset(self, values, aggregator):
        mask = (values % 7) == 0
        foundset = BitVector.from_bools(mask)
        assert aggregator.average(foundset) == pytest.approx(
            float(values[mask].mean())
        )

    def test_empty_foundset(self, aggregator):
        empty = BitVector.zeros(aggregator.num_rows)
        assert aggregator.sum(empty) == 0
        assert aggregator.count(empty) == 0
        with pytest.raises(EmptyFoundsetError):
            aggregator.minimum(empty)
        with pytest.raises(EmptyFoundsetError):
            aggregator.average(empty)

    def test_foundset_length_checked(self, aggregator):
        with pytest.raises(ValueOutOfRangeError):
            aggregator.sum(BitVector.zeros(3))

    def test_foundset_not_mutated_by_minmax(self, values, aggregator):
        foundset = BitVector.ones(len(values))
        before = foundset.count()
        aggregator.minimum(foundset)
        aggregator.maximum(foundset)
        assert foundset.count() == before


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(st.integers(0, 5000), min_size=1, max_size=120),
    seed=st.integers(0, 2**31),
)
def test_aggregates_match_numpy_property(data, seed):
    values = np.array(data)
    agg = BitSlicedAggregator.from_values(values)
    mask = np.random.default_rng(seed).random(len(values)) < 0.5
    foundset = BitVector.from_bools(mask)
    assert agg.sum(foundset) == int(values[mask].sum())
    assert agg.count(foundset) == int(mask.sum())
    if mask.any():
        assert agg.minimum(foundset) == int(values[mask].min())
        assert agg.maximum(foundset) == int(values[mask].max())
