"""Chaos suite: every fault class recovers or degrades, never lies.

The acceptance contract of the resilience layer, exercised end to end
with the deterministic :class:`~repro.faults.FaultPlan` harness: for
each fault class — worker crash, shm attach failure, shm corruption,
injected worker error, disk damage, deadline expiry — a query under
injection either returns RIDs **bit-identical** to the no-fault run or
raises the documented typed error.  Never a wrong answer, never a
leaked shared-memory segment, never a wedged pool.  Every recovery
shows up in the metrics (retries, degradations, corruptions, timeouts).

Process-pool scenarios are parametrized over seeds to pin determinism:
the same plan against the same call sequence fires at the same places.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine import QueryEngine, QueryOptions, RetryPolicy
from repro.engine.resilience import CircuitBreaker
from repro.engine.sharding import _SHM_PREFIX, sweep_orphan_segments
from repro.errors import QueryTimeoutError
from repro.faults import FaultPlan, FaultSpec
from repro.relation.relation import Relation

NUM_ROWS = 5_003
QUERIES = (
    "quantity < 10",
    "quantity >= 40 or region = 3",
    "quantity between 12 and 30 and not region = 1",
)

#: Zero-sleep policy: chaos tests retry instantly but keep the schedule.
FAST_RETRY = RetryPolicy(max_retries=2, base_delay_seconds=0.0)

#: The fixed seed matrix; CI shards it one seed per job via CHAOS_SEEDS
#: (comma-separated). Plans are deterministic, so each seed pins one
#: injection schedule rather than sampling a random one.
SEEDS = tuple(
    int(s) for s in os.environ.get("CHAOS_SEEDS", "0,7,1998").split(",")
)


def make_relation() -> Relation:
    rng = np.random.default_rng(11)
    return Relation.from_dict(
        "orders",
        {
            "quantity": rng.integers(0, 50, NUM_ROWS),
            "region": rng.integers(0, 8, NUM_ROWS),
        },
    )


def make_engine(relation: Relation, **kwargs) -> QueryEngine:
    kwargs.setdefault("backend", "processes")
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("retry", FAST_RETRY)
    engine = QueryEngine(**kwargs)
    engine.register(relation)
    return engine


@pytest.fixture(scope="module")
def relation() -> Relation:
    return make_relation()


@pytest.fixture(scope="module")
def baselines(relation) -> dict:
    """No-fault RIDs per query — the ground truth recovery must match."""
    with make_engine(relation) as engine:
        return {q: engine.query(q).rids for q in QUERIES}


def leaked_segments() -> list[str]:
    return [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(_SHM_PREFIX + "-")
    ]


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = set(leaked_segments())
    yield
    after = set(leaked_segments())
    assert after <= before, f"leaked shm segments: {sorted(after - before)}"


# ----------------------------------------------------------------------
# Recoverable faults: RIDs must be bit-identical to the no-fault run
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
class TestRecoverableFaults:
    def assert_recovers(self, relation, baselines, plan, retry_reason):
        with make_engine(relation, fault_plan=plan) as engine:
            for query in QUERIES:
                result = engine.query(query)
                assert np.array_equal(result.rids, baselines[query]), query
            resilience = engine.snapshot()["resilience"]
        assert resilience["retries"].get(retry_reason, 0) >= 1, resilience
        assert resilience["degradations"] == []
        assert plan.injections, "the fault never fired"
        return resilience

    def test_worker_crash_recovers(self, relation, baselines, seed):
        plan = FaultPlan([FaultSpec("worker.execute", "crash", nth=1)], seed=seed)
        self.assert_recovers(relation, baselines, plan, "pool-broken")

    def test_worker_error_recovers(self, relation, baselines, seed):
        plan = FaultPlan([FaultSpec("worker.execute", "error", nth=2)], seed=seed)
        self.assert_recovers(relation, baselines, plan, "injected")

    def test_shm_attach_failure_recovers(self, relation, baselines, seed):
        plan = FaultPlan([FaultSpec("shm.attach", "error", nth=1)], seed=seed)
        self.assert_recovers(relation, baselines, plan, "shm-attach")

    def test_shm_corruption_rebuilds_from_source(self, relation, baselines, seed):
        plan = FaultPlan([FaultSpec("shm.attach", "corrupt", nth=1)], seed=seed)
        resilience = self.assert_recovers(
            relation, baselines, plan, "shard-corrupt"
        )
        assert resilience["corruptions"] == {"shm": 1}

    def test_crash_mid_workload_preserves_later_queries(
        self, relation, baselines, seed
    ):
        # The pool breaks on the second dispatch; queries before, during,
        # and after all return the truth.
        plan = FaultPlan([FaultSpec("worker.execute", "crash", nth=3)], seed=seed)
        with make_engine(relation, fault_plan=plan) as engine:
            for _ in range(2):
                for query in QUERIES:
                    assert np.array_equal(
                        engine.query(query).rids, baselines[query]
                    )


# ----------------------------------------------------------------------
# Persistent faults: bounded retries, then graceful degradation
# ----------------------------------------------------------------------


class TestDegradation:
    def test_persistent_crash_degrades_to_threads(self, relation, baselines):
        plan = FaultPlan([FaultSpec("worker.execute", "crash", count=-1)])
        with make_engine(relation, fault_plan=plan) as engine:
            result = engine.query(QUERIES[0], options=QueryOptions(trace=True))
            assert np.array_equal(result.rids, baselines[QUERIES[0]])
            snap = engine.snapshot()
        degradations = snap["resilience"]["degradations"]
        assert degradations == [
            {
                "source": "processes",
                "target": "threads",
                "reason": "retries-exhausted",
                "count": 1,
            }
        ]
        # Bounded: exactly max_retries retries were attempted.
        assert snap["resilience"]["retries"] == {
            "pool-broken": FAST_RETRY.max_retries
        }

    def test_breaker_opens_and_skips_the_pool(self, relation, baselines):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after_seconds=60.0, clock=lambda: clock[0]
        )
        plan = FaultPlan([FaultSpec("worker.execute", "crash", count=-1)])
        with make_engine(
            relation, fault_plan=plan, breaker=breaker
        ) as engine:
            # Two failing episodes open the relation's circuit ...
            for _ in range(2):
                assert np.array_equal(
                    engine.query(QUERIES[0]).rids, baselines[QUERIES[0]]
                )
            assert breaker.state("relation:orders") == "open"
            # ... so the next query never touches the pool: it degrades
            # with reason breaker-open and schedules no retries.
            before = engine.snapshot()["resilience"]["retries"]["pool-broken"]
            assert np.array_equal(
                engine.query(QUERIES[1]).rids, baselines[QUERIES[1]]
            )
            snap = engine.snapshot()["resilience"]
            assert snap["retries"]["pool-broken"] == before
            assert any(
                d["reason"] == "breaker-open" for d in snap["degradations"]
            )
            # After the reset window the circuit half-opens and allows a
            # trial dispatch through again.
            clock[0] += 61.0
            assert breaker.state("relation:orders") == "half-open"
            assert np.array_equal(
                engine.query(QUERIES[0]).rids, baselines[QUERIES[0]]
            )
            assert (
                engine.snapshot()["resilience"]["retries"]["pool-broken"]
                > before
            )

    def test_trace_records_retries(self, relation, baselines):
        plan = FaultPlan([FaultSpec("worker.execute", "error", nth=1)])
        with make_engine(relation, fault_plan=plan) as engine:
            result = engine.query(QUERIES[0], options=QueryOptions(trace=True))
        assert np.array_equal(result.rids, baselines[QUERIES[0]])
        faults = [
            span
            for span in result.trace.as_dict()["spans"]
            if span["kind"] == "fault"
        ]
        assert faults and faults[0]["name"] == "dispatch.retry"
        assert faults[0]["attrs"]["reason"] == "injected"


# ----------------------------------------------------------------------
# Deadlines: typed error, partial trace, never a hang
# ----------------------------------------------------------------------


class TestDeadlines:
    @pytest.mark.parametrize("backend", ["inline", "threads", "processes"])
    def test_expired_budget_is_a_typed_error(self, relation, backend):
        with make_engine(relation, backend=backend) as engine:
            with pytest.raises(QueryTimeoutError):
                engine.query(
                    QUERIES[0], options=QueryOptions(deadline_ms=0.0)
                )
            assert engine.snapshot()["resilience"]["timeouts"] == 1

    def test_generous_budget_does_not_interfere(self, relation, baselines):
        with make_engine(relation) as engine:
            result = engine.query(
                QUERIES[0], options=QueryOptions(deadline_ms=60_000.0)
            )
            assert np.array_equal(result.rids, baselines[QUERIES[0]])
            assert engine.snapshot()["resilience"]["timeouts"] == 0

    def test_partial_trace_attached_on_timeout(self, relation):
        with make_engine(relation, backend="threads") as engine:
            with pytest.raises(QueryTimeoutError) as excinfo:
                engine.query(
                    QUERIES[0],
                    options=QueryOptions(deadline_ms=0.0, trace=True),
                )
        trace = excinfo.value.trace
        assert trace is not None
        events = [span["name"] for span in trace.as_dict()["spans"]]
        assert "deadline.exceeded" in events

    def test_timeout_not_retried(self, relation):
        # A deadline miss must fail fast, not burn the retry schedule.
        with make_engine(relation) as engine:
            with pytest.raises(QueryTimeoutError):
                engine.query(
                    QUERIES[0], options=QueryOptions(deadline_ms=0.0)
                )
            assert engine.snapshot()["resilience"]["retries"] == {}


# ----------------------------------------------------------------------
# Cache seam and orphan sweep
# ----------------------------------------------------------------------


class TestCacheSeam:
    def test_forced_miss_refetches_without_changing_results(
        self, relation, baselines
    ):
        plan = FaultPlan([FaultSpec("cache.get", "miss", count=-1)])
        with make_engine(
            relation, backend="threads", fault_plan=plan
        ) as engine:
            first = engine.query(QUERIES[0])
            second = engine.query(QUERIES[0])
            assert np.array_equal(first.rids, baselines[QUERIES[0]])
            assert np.array_equal(second.rids, baselines[QUERIES[0]])
            # Every lookup was forced to miss: the repeat query re-scans
            # instead of hitting the cache.
            assert second.stats.buffer_hits == 0
            assert second.stats.scans == first.stats.scans
        assert plan.injections


class TestOrphanSweep:
    def test_dead_publisher_segments_reclaimed(self, tmp_path):
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        dead_pid = 2**22 + 1  # beyond pid_max: guaranteed dead
        orphan = shm_dir / f"{_SHM_PREFIX}-{dead_pid}-deadbeef"
        orphan.write_bytes(b"stale")
        live = shm_dir / f"{_SHM_PREFIX}-{os.getpid()}-cafecafe"
        live.write_bytes(b"mine")
        unrelated = shm_dir / "psm_something"
        unrelated.write_bytes(b"other")
        reclaimed = sweep_orphan_segments(str(shm_dir))
        assert reclaimed == [orphan.name]
        assert not orphan.exists()
        assert live.exists()  # own segments are never touched
        assert unrelated.exists()  # foreign names are never touched

    def test_malformed_names_skipped(self, tmp_path):
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        weird = shm_dir / f"{_SHM_PREFIX}-notapid-x"
        weird.write_bytes(b"?")
        assert sweep_orphan_segments(str(shm_dir)) == []
        assert weird.exists()

    def test_missing_dir_is_noop(self, tmp_path):
        assert sweep_orphan_segments(str(tmp_path / "absent")) == []

    def test_engine_close_unlinks_all_publications(self, relation):
        engine = make_engine(relation)
        engine.query(QUERIES[0])
        engine.close()
        assert leaked_segments() == []
