"""Tests for the multi-attribute budget allocator."""

from __future__ import annotations


import pytest

from repro.core import costmodel
from repro.core.multi import AttributeSpec, TableDesign, allocate_budget
from repro.core.optimize import (
    max_components,
    time_optimal_under_space_heuristic,
)
from repro.errors import OptimizationError


class TestSpecs:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            AttributeSpec("a", 1)
        with pytest.raises(OptimizationError):
            AttributeSpec("a", 10, weight=0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(OptimizationError):
            allocate_budget(
                [AttributeSpec("a", 10), AttributeSpec("a", 20)], 30
            )

    def test_empty_rejected(self):
        with pytest.raises(OptimizationError):
            allocate_budget([], 10)


class TestAllocation:
    def test_budget_respected(self):
        specs = [AttributeSpec("a", 100), AttributeSpec("b", 50)]
        design = allocate_budget(specs, 40)
        assert design.total_bitmaps <= 40
        assert set(design.indexes) == {"a", "b"}
        for spec in specs:
            assert design.indexes[spec.name].covers(spec.cardinality)

    def test_floor_enforced(self):
        specs = [AttributeSpec("a", 100), AttributeSpec("b", 50)]
        minimum = max_components(100) + max_components(50)
        with pytest.raises(OptimizationError):
            allocate_budget(specs, minimum - 1)
        design = allocate_budget(specs, minimum)
        assert design.budgets["a"] == max_components(100)
        assert design.budgets["b"] == max_components(50)

    def test_generous_budget_gives_time_optimal_everywhere(self):
        specs = [AttributeSpec("a", 20), AttributeSpec("b", 12)]
        design = allocate_budget(specs, 19 + 11)
        assert costmodel.time_range(design.indexes["a"]) == pytest.approx(
            costmodel.time_range(time_optimal_under_space_heuristic(19, 20))
        )
        assert design.expected_scans < 1.5

    def test_heavier_weight_attracts_budget(self):
        light = allocate_budget(
            [AttributeSpec("hot", 100, weight=1.0),
             AttributeSpec("cold", 100, weight=1.0)],
            40,
        )
        skewed = allocate_budget(
            [AttributeSpec("hot", 100, weight=10.0),
             AttributeSpec("cold", 100, weight=0.1)],
            40,
        )
        assert skewed.budgets["hot"] >= light.budgets["hot"]
        assert costmodel.time_range(skewed.indexes["hot"]) <= costmodel.time_range(
            light.indexes["hot"]
        )

    def test_higher_budget_never_worse(self):
        specs = [AttributeSpec("a", 60), AttributeSpec("b", 40, weight=2.0)]
        previous = float("inf")
        for budget in (12, 20, 30, 50, 90):
            design = allocate_budget(specs, budget)
            assert design.expected_scans <= previous + 1e-9
            previous = design.expected_scans

    @pytest.mark.parametrize("budget", [12, 16, 22, 30])
    def test_near_exhaustive_split(self, budget):
        """Greedy matches the best split found by trying every division."""
        specs = [AttributeSpec("a", 30), AttributeSpec("b", 20, weight=2.0)]
        design = allocate_budget(specs, budget)
        floor_a = max_components(30)
        floor_b = max_components(20)
        best = float("inf")
        for m_a in range(floor_a, budget - floor_b + 1):
            m_b = budget - m_a
            t_a = costmodel.time_range(
                time_optimal_under_space_heuristic(m_a, 30)
            )
            t_b = costmodel.time_range(
                time_optimal_under_space_heuristic(m_b, 20)
            )
            best = min(best, (1.0 * t_a + 2.0 * t_b) / 3.0)
        # Greedy over convex-ish curves: allow a small slack.
        assert design.expected_scans <= best * 1.05 + 1e-9

    def test_str_rendering(self):
        design = allocate_budget([AttributeSpec("a", 20)], 10)
        assert isinstance(design, TableDesign)
        assert "bitmaps" in str(design)

    def test_single_attribute_degenerates_to_constrained_search(self):
        design = allocate_budget([AttributeSpec("a", 100)], 25)
        expected = time_optimal_under_space_heuristic(25, 100)
        assert design.expected_scans == pytest.approx(
            costmodel.time_range(expected)
        )
