"""Tests for the engine metrics: bounded latency reservoir and snapshots.

The regression pinned here: ``EngineMetrics`` used to append every query
latency to an unbounded list, a slow memory leak in a long-lived serving
engine.  The :class:`~repro.engine.metrics.LatencyReservoir` keeps a
fixed-size uniform sample (exact while ``count <= capacity``) with exact
count/sum/max, and the percentile estimates stay accurate.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.metrics import EngineMetrics, LatencyReservoir, percentile
from repro.stats import ExecutionStats


class TestLatencyReservoir:
    def test_memory_stays_bounded(self):
        # The regression test: far more records than capacity, sample
        # size (the only unbounded state the old list had) stays capped.
        reservoir = LatencyReservoir(capacity=128)
        for i in range(50_000):
            reservoir.add(i / 1000.0)
        assert len(reservoir) == 128
        assert reservoir.count == 50_000

    def test_exact_aggregates_regardless_of_sampling(self):
        reservoir = LatencyReservoir(capacity=16)
        values = [float(i) for i in range(1000)]
        for v in values:
            reservoir.add(v)
        assert reservoir.count == 1000
        assert reservoir.total == pytest.approx(sum(values))
        assert reservoir.max == 999.0
        assert reservoir.mean == pytest.approx(sum(values) / 1000)

    def test_exact_percentiles_below_capacity(self):
        reservoir = LatencyReservoir(capacity=2048)
        values = [float(i) for i in range(500)]
        for v in values:
            reservoir.add(v)
        # Sample IS the full history: bit-identical to the exact ranks.
        p50, p95, p99 = reservoir.percentiles((0.50, 0.95, 0.99))
        exact = sorted(values)
        assert p50 == percentile(exact, 0.50)
        assert p95 == percentile(exact, 0.95)
        assert p99 == percentile(exact, 0.99)

    def test_sampled_percentiles_stay_accurate(self):
        # Uniform stream over [0, 1): sampled quantiles must land near
        # the true ones even with a 64x-overflowed reservoir.
        reservoir = LatencyReservoir(capacity=1024)
        n = 65_536
        for i in range(n):
            reservoir.add((i * 0.6180339887498949) % 1.0)
        p50, p95, _ = reservoir.percentiles((0.50, 0.95, 0.99))
        assert p50 == pytest.approx(0.50, abs=0.05)
        assert p95 == pytest.approx(0.95, abs=0.05)

    def test_empty_percentiles_are_zero(self):
        reservoir = LatencyReservoir()
        assert reservoir.percentiles((0.5, 0.99)) == [0.0, 0.0]
        assert reservoir.mean == 0.0

    def test_clear(self):
        reservoir = LatencyReservoir(capacity=8)
        for i in range(100):
            reservoir.add(float(i))
        reservoir.clear()
        assert reservoir.count == 0
        assert len(reservoir) == 0
        assert reservoir.total == 0.0
        assert reservoir.max == 0.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


class TestEngineMetrics:
    def test_snapshot_shape_unchanged(self):
        metrics = EngineMetrics()
        metrics.record(0.010, ExecutionStats(scans=3, ands=2))
        snap = metrics.snapshot()
        assert snap["queries"] == 1
        assert snap["failures"] == 0
        assert set(snap["latency_ms"]) == {"mean", "p50", "p95", "p99", "max"}
        assert snap["stats"]["scans"] == 3
        assert snap["stats"]["ops"] == 2

    def test_bounded_under_many_records(self):
        metrics = EngineMetrics(reservoir_size=64)
        for i in range(10_000):
            metrics.record(i / 1e6, ExecutionStats(scans=1))
        snap = metrics.snapshot()
        assert snap["queries"] == 10_000
        assert snap["stats"]["scans"] == 10_000
        assert len(metrics._latencies) == 64
        # max and mean are exact even though percentiles are sampled
        assert snap["latency_ms"]["max"] == pytest.approx(9.999)
        assert snap["latency_ms"]["mean"] == pytest.approx(
            1e3 * sum(i / 1e6 for i in range(10_000)) / 10_000
        )

    def test_small_workload_percentiles_exact(self):
        metrics = EngineMetrics()
        latencies = [0.001 * (i + 1) for i in range(100)]
        for latency in latencies:
            metrics.record(latency, ExecutionStats())
        snap = metrics.snapshot()
        exact = sorted(latencies)
        assert snap["latency_ms"]["p50"] == pytest.approx(
            1e3 * percentile(exact, 0.50)
        )
        assert snap["latency_ms"]["p99"] == pytest.approx(
            1e3 * percentile(exact, 0.99)
        )

    def test_breakdowns_by_relation_and_access_path(self):
        metrics = EngineMetrics()
        metrics.record(
            0.001,
            ExecutionStats(scans=2, bytes_read=10),
            relation="a",
            access_path="bitmap",
        )
        metrics.record(
            0.003,
            ExecutionStats(scans=1, ands=1, buffer_hits=4),
            relation="b",
            access_path="expression",
        )
        metrics.record(
            0.002, ExecutionStats(scans=5), relation="a", access_path="expression"
        )
        snap = metrics.snapshot()
        assert snap["by_relation"]["a"]["queries"] == 2
        assert snap["by_relation"]["a"]["scans"] == 7
        assert snap["by_relation"]["b"]["buffer_hits"] == 4
        assert snap["by_access_path"]["bitmap"]["queries"] == 1
        assert snap["by_access_path"]["expression"]["queries"] == 2
        # unlabeled records still fold into the global aggregate only
        metrics.record(0.001, ExecutionStats(scans=1))
        snap = metrics.snapshot()
        assert snap["queries"] == 4
        assert snap["by_relation"]["a"]["queries"] == 2

    def test_reset_clears_breakdowns_and_reservoir(self):
        metrics = EngineMetrics()
        metrics.record(0.001, ExecutionStats(scans=1), relation="a")
        metrics.record_failure()
        metrics.reset()
        snap = metrics.snapshot()
        assert snap["queries"] == 0
        assert snap["failures"] == 0
        assert snap["by_relation"] == {}
        assert snap["latency_ms"]["max"] == 0.0

    def test_snapshot_text_families(self):
        metrics = EngineMetrics()
        metrics.record(
            0.002,
            ExecutionStats(scans=3, ands=1, bytes_read=64, buffer_hits=2),
            relation='with"quote',
            access_path="bitmap",
        )
        text = metrics.snapshot_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 1" in text
        assert "repro_scans_total 3" in text
        assert "repro_ops_total 1" in text
        assert 'repro_query_latency_ms{quantile="p99"}' in text
        # label values are escaped per the exposition format
        assert 'repro_relation_scans_total{relation="with\\"quote"} 3' in text
        assert text.endswith("\n")

    def test_thread_safety_of_record(self):
        metrics = EngineMetrics(reservoir_size=32)

        def worker():
            for _ in range(2000):
                metrics.record(0.001, ExecutionStats(scans=1), relation="r")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        assert snap["queries"] == 16_000
        assert snap["stats"]["scans"] == 16_000
        assert snap["by_relation"]["r"]["queries"] == 16_000
        assert len(metrics._latencies) == 32
