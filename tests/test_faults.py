"""Unit tests for the deterministic fault-injection harness and deadlines."""

from __future__ import annotations

import time

import pytest

from repro.errors import EngineConfigError, QueryTimeoutError
from repro.faults import SEAM_KINDS, Deadline, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_seam_rejected(self):
        with pytest.raises(EngineConfigError, match="unknown fault seam"):
            FaultSpec("disk.levitate", "error")

    def test_unknown_kind_rejected(self):
        with pytest.raises(EngineConfigError, match="does not support"):
            FaultSpec("disk.read", "crash")

    @pytest.mark.parametrize("seam,kinds", sorted(SEAM_KINDS.items()))
    def test_every_documented_kind_constructs(self, seam, kinds):
        for kind in kinds:
            FaultSpec(seam, kind)

    def test_nth_must_be_positive(self):
        with pytest.raises(EngineConfigError):
            FaultSpec("disk.read", "error", nth=0)

    def test_count_zero_rejected(self):
        with pytest.raises(EngineConfigError):
            FaultSpec("disk.read", "error", count=0)

    def test_plan_rejects_non_specs(self):
        with pytest.raises(EngineConfigError):
            FaultPlan(["disk.read"])  # type: ignore[list-item]


class TestFaultPlanFiring:
    def test_fires_on_nth_call(self):
        plan = FaultPlan([FaultSpec("disk.read", "error", nth=3)])
        assert plan.check("disk.read") is None
        assert plan.check("disk.read") is None
        assert plan.check("disk.read") is not None
        assert plan.check("disk.read") is None  # count=1: one-shot

    def test_count_window(self):
        plan = FaultPlan([FaultSpec("disk.read", "error", nth=2, count=2)])
        fired = [plan.check("disk.read") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_count_forever(self):
        plan = FaultPlan([FaultSpec("disk.read", "error", count=-1)])
        assert all(plan.check("disk.read") is not None for _ in range(10))

    def test_match_filters_ident(self):
        plan = FaultPlan([FaultSpec("disk.read", "error", match="idx/")])
        assert plan.check("disk.read", ident="other") is None
        assert plan.check("disk.read", ident="idx/c1_s0") is not None

    def test_seams_count_independently(self):
        plan = FaultPlan(
            [
                FaultSpec("disk.read", "error", nth=2),
                FaultSpec("cache.get", "miss", nth=1),
            ]
        )
        assert plan.check("cache.get") is not None
        assert plan.check("disk.read") is None
        assert plan.check("disk.read") is not None

    def test_first_spec_wins_but_all_counters_advance(self):
        plan = FaultPlan(
            [
                FaultSpec("disk.read", "torn", nth=1),
                FaultSpec("disk.read", "corrupt", nth=2),
            ]
        )
        assert plan.check("disk.read").kind == "torn"
        # Both counters saw call 1, so the second spec fires on call 2.
        assert plan.check("disk.read").kind == "corrupt"

    def test_injection_log_and_snapshot(self):
        plan = FaultPlan([FaultSpec("disk.read", "error")], seed=9)
        plan.check("disk.read", ident="idx/a")
        snap = plan.snapshot()
        assert snap["seed"] == 9
        assert snap["fired"] == 1
        assert snap["by_seam"] == {"disk.read": 1}
        assert snap["injections"] == [
            {"seam": "disk.read", "kind": "error", "ident": "idx/a"}
        ]

    def test_reset_rearms(self):
        plan = FaultPlan([FaultSpec("disk.read", "error", nth=1)])
        assert plan.check("disk.read") is not None
        assert plan.check("disk.read") is None
        plan.reset()
        assert plan.check("disk.read") is not None
        assert len(plan.injections) == 1

    def test_determinism_across_instances(self):
        def run(seed):
            plan = FaultPlan(
                [FaultSpec("disk.read", "corrupt", nth=2, count=3)], seed=seed
            )
            fired = []
            for i in range(6):
                spec = plan.check("disk.read", ident=f"file-{i}")
                fired.append((i, spec.kind if spec else None))
            offsets = [plan.byte_offset(100) for _ in range(3)]
            return fired, offsets

        assert run(42) == run(42)
        assert run(42)[1] != run(43)[1]

    def test_byte_offset_in_range(self):
        plan = FaultPlan([], seed=1)
        assert plan.byte_offset(0) == 0
        for length in (1, 2, 1000):
            assert 0 <= plan.byte_offset(length) < length


class TestDeadline:
    def test_negative_budget_rejected(self):
        with pytest.raises(EngineConfigError):
            Deadline(-1.0)

    def test_fresh_budget_not_expired(self):
        deadline = Deadline(60_000.0)
        assert not deadline.expired()
        assert deadline.remaining_ms > 59_000
        deadline.check("anywhere")  # no raise

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(QueryTimeoutError, match="at evaluate"):
            deadline.check("evaluate")

    def test_explicit_expiry_is_respected(self):
        past = time.monotonic() - 1.0
        deadline = Deadline(5_000.0, expires_at=past)
        assert deadline.expired()
        assert deadline.remaining_seconds < 0

    def test_timeout_error_pickles(self):
        # Workers raise QueryTimeoutError across the process boundary.
        import pickle

        exc = QueryTimeoutError("deadline of 5 ms exceeded at shard-task")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, QueryTimeoutError)
        assert "5 ms" in str(clone)
