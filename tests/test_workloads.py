"""Tests for the workload generators and query spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import OPERATORS
from repro.errors import ValueOutOfRangeError
from repro.workloads.generators import (
    clustered_values,
    uniform_values,
    zipf_values,
)
from repro.workloads.queries import (
    full_query_space,
    restricted_query_space,
    sample_queries,
)
from repro.workloads.tpcd import (
    ORDERDATE_DAYS,
    QUANTITY_CARDINALITY,
    dataset1,
    dataset2,
    lineitem_relation,
    order_relation,
    orderdate_to_date,
)


class TestGenerators:
    def test_uniform_bounds_and_determinism(self):
        a = uniform_values(1000, 50, seed=7)
        b = uniform_values(1000, 50, seed=7)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 50

    def test_uniform_different_seeds_differ(self):
        assert not np.array_equal(
            uniform_values(1000, 50, seed=1), uniform_values(1000, 50, seed=2)
        )

    def test_uniform_covers_domain(self):
        values = uniform_values(5000, 20, seed=0)
        assert len(np.unique(values)) == 20

    def test_zipf_skews_toward_small_values(self):
        values = zipf_values(5000, 50, skew=1.5, seed=0)
        counts = np.bincount(values, minlength=50)
        assert counts[0] > counts[10] > counts[40]

    def test_zipf_zero_skew_roughly_uniform(self):
        values = zipf_values(20000, 10, skew=0.0, seed=0)
        counts = np.bincount(values, minlength=10)
        assert counts.min() > 0.7 * counts.max()

    def test_zipf_validation(self):
        with pytest.raises(ValueOutOfRangeError):
            zipf_values(10, 10, skew=-1)

    def test_clustered_has_runs(self):
        values = clustered_values(5000, 50, run_length=40, seed=0)
        changes = int((values[1:] != values[:-1]).sum())
        assert changes < 5000 / 10  # far fewer boundaries than rows

    def test_clustered_validation(self):
        with pytest.raises(ValueOutOfRangeError):
            clustered_values(10, 10, run_length=0)

    def test_common_validation(self):
        with pytest.raises(ValueOutOfRangeError):
            uniform_values(-1, 10)
        with pytest.raises(ValueOutOfRangeError):
            uniform_values(10, 0)

    def test_empty(self):
        assert len(uniform_values(0, 10)) == 0


class TestQuerySpaces:
    def test_full_space_size(self):
        queries = list(full_query_space(10))
        assert len(queries) == 60
        assert {q.op for q in queries} == set(OPERATORS)
        assert {q.value for q in queries} == set(range(10))

    def test_restricted_space_size(self):
        queries = list(restricted_query_space(10))
        assert len(queries) == 20
        assert {q.op for q in queries} == {"<=", "="}

    def test_sample_queries(self):
        queries = sample_queries(50, 100, seed=3)
        assert len(queries) == 100
        assert all(0 <= q.value < 50 for q in queries)
        assert queries == sample_queries(50, 100, seed=3)

    def test_sample_operator_subset(self):
        queries = sample_queries(50, 40, operators=("=",), seed=1)
        assert all(q.op == "=" for q in queries)

    def test_sample_validation(self):
        with pytest.raises(ValueOutOfRangeError):
            sample_queries(50, -1)
        with pytest.raises(ValueOutOfRangeError):
            sample_queries(50, 5, operators=("~",))
        with pytest.raises(ValueOutOfRangeError):
            list(full_query_space(1))


class TestTpcd:
    def test_lineitem_shape(self):
        rel = lineitem_relation(2000, seed=1)
        quantity = rel.column("quantity")
        assert quantity.values.min() >= 1
        assert quantity.values.max() <= QUANTITY_CARDINALITY
        assert rel.num_rows == 2000

    def test_order_shape(self):
        rel = order_relation(2000, seed=1)
        dates = rel.column("orderdate")
        assert dates.values.min() >= 0
        assert dates.values.max() < ORDERDATE_DAYS

    def test_dataset_specs(self):
        _, spec1 = dataset1(num_rows=5000)
        assert spec1.attribute == "quantity"
        assert spec1.attribute_cardinality == QUANTITY_CARDINALITY
        _, spec2 = dataset2(num_rows=60_000)
        assert spec2.attribute == "orderdate"
        # With enough rows every one of the 2406 days appears.
        assert spec2.attribute_cardinality == ORDERDATE_DAYS

    def test_determinism(self):
        a, _ = dataset1(num_rows=100)
        b, _ = dataset1(num_rows=100)
        assert np.array_equal(
            a.column("quantity").values, b.column("quantity").values
        )

    def test_orderdate_decoding(self):
        assert str(orderdate_to_date(0)) == "1992-01-01"
        assert str(orderdate_to_date(ORDERDATE_DAYS - 1)) == "1998-08-02"
