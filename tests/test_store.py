"""Tests for the persistent on-disk index store (``.rbix`` format).

Covers the PR's contract end to end: codec round-trips through a real
file, mmap lazy loading (dictionary eagerly, payloads only when a query
touches them), crash-atomic append + compaction, and typed corruption
detection for every region of the format — a damaged store must raise
:class:`~repro.errors.CorruptFileError`, never return a wrong answer.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.index import BitmapIndex
from repro.errors import (
    BufferConfigError,
    CorruptFileError,
    EngineConfigError,
    FileMissingError,
    InjectedFaultError,
    StorageError,
    ValueOutOfRangeError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.query.options import QueryOptions
from repro.query.predicate import AttributePredicate
from repro.relation.relation import Relation
from repro.stats import ExecutionStats
from repro.storage import IndexStore, Storage
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel
from repro.storage.fsdisk import FileSystemDisk
from repro.storage.store import _HEADER, _MAGIC

NUM_ROWS = 600
REGIONS = np.array(["east", "north", "south", "west"])


def make_relation(num_rows: int = NUM_ROWS, seed: int = 11) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation.from_dict(
        "sales",
        {
            "quantity": rng.integers(0, 40, num_rows),
            "region": REGIONS[rng.integers(0, 4, num_rows)],
        },
    )


@pytest.fixture
def relation() -> Relation:
    return make_relation()


@pytest.fixture
def store_dir(tmp_path) -> str:
    return str(tmp_path / "indexes")


def flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def all_slot_bools(source, reference: BitmapIndex) -> None:
    """Every stored slot must decode bit-identical to the in-memory index."""
    stats = ExecutionStats()
    for comp in range(1, reference.base.n + 1):
        for slot in reference.stored_slots(comp):
            stored = source.fetch(comp, slot, stats, codec="dense")
            expected = reference.components[comp - 1].bitmap(slot)
            assert np.array_equal(stored.to_bools(), expected.to_bools()), (
                f"component {comp} slot {slot} diverged"
            )


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["dense", "wah", "roaring"])
    def test_codec_round_trip_after_reopen(self, store_dir, relation, codec):
        base = Base((8, 5))
        with IndexStore(store_dir) as store:
            summary = store.build(
                relation, codec=codec, base=base, encoding=EncodingScheme.RANGE
            )
        assert summary["attributes"]["quantity"]["codec"] == codec
        # A brand-new store instance sees only the bytes on disk.
        with IndexStore(store_dir) as store:
            for attr in ("quantity", "region"):
                column = relation.column(attr)
                reference = BitmapIndex(
                    column.codes,
                    column.cardinality,
                    base=base,
                    encoding=EncodingScheme.RANGE,
                )
                source = store.bitmap_source("sales", attr)
                assert source is not None
                assert source.stored_codec == codec
                assert source.nbits == NUM_ROWS
                assert source.cardinality == column.cardinality
                all_slot_bools(source, reference)

    def test_per_attribute_codec_choice(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation, codec={"quantity": "wah", "region": "roaring"})
        with IndexStore(store_dir) as store:
            assert store.bitmap_source("sales", "quantity").stored_codec == "wah"
            assert store.bitmap_source("sales", "region").stored_codec == "roaring"

    def test_relation_view_restores_dictionary(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        with IndexStore(store_dir) as store:
            view = store.relation_view("sales")
            assert view.num_rows == NUM_ROWS
            assert sorted(view.columns) == ["quantity", "region"]
            np.testing.assert_array_equal(
                view.column("region").dictionary, np.sort(np.unique(REGIONS))
            )
            # Stored columns hold no row values: scans must refuse, not lie.
            with pytest.raises(StorageError):
                view.scan("region", "=", "east")

    def test_introspection(self, store_dir, relation):
        store = IndexStore(store_dir)
        assert store.relations() == []
        store.build(relation)
        assert store.relations() == ["sales"]
        assert store.attributes("sales") == ["quantity", "region"]
        assert store.has("sales", "region")
        assert not store.has("sales", "discount")
        assert not store.has("orders")
        assert store.bitmap_source("sales", "discount") is None
        assert store.bitmap_source("orders", "region") is None
        assert store.total_bytes() == store.total_bytes("sales") > 0
        store.close()

    def test_illegal_relation_names_rejected(self, store_dir):
        store = IndexStore(store_dir)
        for name in ("", ".", "..", "a/b", ".tmp-x"):
            with pytest.raises(StorageError):
                store.has(name)


class TestStorageProtocol:
    def test_backends_conform(self, store_dir, tmp_path):
        assert isinstance(IndexStore(store_dir), Storage)
        assert isinstance(DiskModel(), Storage)
        assert isinstance(FileSystemDisk(str(tmp_path / "fs")), Storage)

    def test_real_io_backends_model_no_wait(self, store_dir):
        store = IndexStore(store_dir)
        assert store.read_seconds(3, 4096) == 0.0
        assert DiskModel().read_seconds(3, 4096) > 0.0

    def test_io_snapshot_shape(self, store_dir, relation):
        store = IndexStore(store_dir)
        store.build(relation)
        snap = store.io_snapshot()
        assert snap["backend"] == "store"
        assert snap["bytes_written"] > 0
        for key in ("dict_bytes", "payload_bytes_read", "bitmaps_materialized",
                    "pages_touched", "opens"):
            assert key in snap

    def test_buffer_pool_fronts_a_storage_backend(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        store = IndexStore(store_dir)
        pool = BufferPool(
            store, capacity=4, policy="lru", relation="sales", attribute="quantity"
        )
        stats = ExecutionStats()
        first = pool.fetch(1, 1, stats)
        again = pool.fetch(1, 1, stats)
        assert np.array_equal(first.to_bools(), again.to_bools())
        assert pool.hits == 1
        with pytest.raises(BufferConfigError, match="relation= and attribute="):
            BufferPool(store, capacity=4, policy="lru")
        with pytest.raises(BufferConfigError, match="holds no bitmaps"):
            BufferPool(
                store, capacity=4, policy="lru",
                relation="sales", attribute="discount",
            )


class TestLazyLoading:
    def test_open_reads_dictionary_not_payloads(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        store = IndexStore(store_dir)
        source = store.bitmap_source("sales", "quantity")
        assert source is not None
        assert store.stats.opens == 1
        assert store.stats.dict_bytes > 0
        assert store.stats.payload_bytes_read == 0
        assert store.stats.bitmaps_materialized == 0

    def test_single_predicate_touches_only_its_payloads(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            summary = store.build(relation, codec="wah")
        quantity_bytes = summary["attributes"]["quantity"]["payload_bytes"]
        engine = repro.open_store(store_dir)
        store = engine.storage
        engine.query(AttributePredicate("quantity", "<=", 7))
        # Only quantity payloads may have been materialized — strictly
        # fewer bytes than that attribute holds (a one-sided range query
        # never needs every slot), and none of region's.
        assert 0 < store.stats.payload_bytes_read < quantity_bytes
        assert store.stats.bitmaps_materialized < (
            summary["attributes"]["quantity"]["num_bitmaps"]
        )
        assert store.stats.pages_touched > 0
        engine.close()

    def test_repeat_fetch_rereads_but_verifies_crc_once(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        store = IndexStore(store_dir)
        source = store.bitmap_source("sales", "quantity")
        stats = ExecutionStats()
        source.fetch(1, 1, stats)
        once = store.stats.payload_bytes_read
        source.fetch(1, 1, stats)
        assert store.stats.payload_bytes_read == 2 * once
        assert store.stats.bitmaps_materialized == 2


class TestAppendCompact:
    def test_append_merges_into_served_bitmaps(self, store_dir):
        base_rel = make_relation(500, seed=11)
        tail = make_relation(100, seed=12)
        full_quantity = np.concatenate(
            [base_rel.column("quantity").values, tail.column("quantity").values]
        )
        with IndexStore(store_dir) as store:
            store.build(base_rel)
            total = store.append(
                "sales",
                {
                    "quantity": tail.column("quantity").values,
                    "region": tail.column("region").values,
                },
            )
            assert total == 600
            assert store.delta_rows("sales") == 100
        engine = repro.open_store(store_dir)
        result = engine.query(AttributePredicate("quantity", "<=", 13))
        truth = np.nonzero(full_quantity <= 13)[0]
        np.testing.assert_array_equal(result.rids, truth)
        engine.close()

    def test_compact_differential_against_rebuild(self, store_dir):
        base_rel = make_relation(500, seed=21)
        tail = make_relation(100, seed=22)
        full = Relation.from_dict(
            "sales",
            {
                "quantity": np.concatenate(
                    [base_rel.column("quantity").values,
                     tail.column("quantity").values]
                ),
                "region": np.concatenate(
                    [base_rel.column("region").values,
                     tail.column("region").values]
                ),
            },
        )
        with IndexStore(store_dir) as store:
            store.build(base_rel, codec="wah")
            store.append(
                "sales",
                {
                    "quantity": tail.column("quantity").values,
                    "region": tail.column("region").values,
                },
            )
            summary = store.compact("sales")
            assert summary["compacted"] is True
            assert summary["rows"] == 600
            assert store.delta_rows("sales") == 0
            assert not os.path.exists(
                os.path.join(store.root, "sales.rbix.delta")
            )
            assert store.verify("sales") == []
        # Every compacted bitmap must equal the one a from-scratch build
        # over the concatenated rows would produce.
        with IndexStore(store_dir) as store:
            for attr in ("quantity", "region"):
                column = full.column(attr)
                source = store.bitmap_source("sales", attr)
                reference = BitmapIndex(
                    column.codes,
                    column.cardinality,
                    base=source.base,
                    encoding=source.encoding,
                )
                all_slot_bools(source, reference)

    def test_append_rejects_unknown_values(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
            with pytest.raises(ValueOutOfRangeError, match="rebuild"):
                store.append(
                    "sales",
                    {
                        "quantity": np.array([1]),
                        "region": np.array(["atlantis"]),
                    },
                )

    def test_append_must_cover_all_attributes(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
            with pytest.raises(ValueOutOfRangeError, match="every stored attribute"):
                store.append("sales", {"quantity": np.array([1])})

    def test_crash_during_append_leaves_store_intact(self, store_dir, relation):
        plan = FaultPlan(
            [FaultSpec("disk.write", "error", match=".rbix.delta")]
        )
        with IndexStore(store_dir) as store:
            store.build(relation)
        store = IndexStore(store_dir, fault_plan=plan)
        rows = {
            "quantity": np.array([3, 4]),
            "region": np.array(["east", "west"]),
        }
        with pytest.raises(InjectedFaultError):
            store.append("sales", rows)
        store.close()
        # Recovery: the base file never changed and no torn delta exists.
        with IndexStore(store_dir) as store:
            assert store.delta_rows("sales") == 0
            assert store.verify("sales") == []
            assert not any(
                name.startswith(".tmp-") for name in os.listdir(store.root)
            )
            # The failed append left nothing behind; retrying succeeds.
            assert store.append("sales", rows) == NUM_ROWS + 2

    def test_compact_is_idempotent(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
            store.append(
                "sales",
                {"quantity": np.array([5]), "region": np.array(["east"])},
            )
            first = store.compact()
            second = store.compact()
        assert first["sales"]["compacted"] is True
        assert first["sales"]["rows"] == NUM_ROWS + 1
        assert second["sales"]["compacted"] is False
        assert second["sales"]["rows"] == NUM_ROWS + 1


class TestCorruptionDetection:
    """Each region of the format detects damage with a typed error."""

    def build(self, store_dir, relation, with_delta=False) -> str:
        with IndexStore(store_dir) as store:
            store.build(relation)
            if with_delta:
                store.append(
                    "sales",
                    {"quantity": np.array([1]), "region": np.array(["east"])},
                )
        return os.path.join(store_dir, "sales.rbix")

    def test_bad_magic(self, store_dir, relation):
        path = self.build(store_dir, relation)
        flip_byte(path, 0)
        with pytest.raises(CorruptFileError, match="magic"):
            IndexStore(store_dir).bitmap_source("sales", "quantity")

    def test_header_field_flip(self, store_dir, relation):
        path = self.build(store_dir, relation)
        flip_byte(path, 9)  # inside dict_offset
        with pytest.raises(CorruptFileError):
            IndexStore(store_dir).bitmap_source("sales", "quantity")

    def test_dictionary_flip(self, store_dir, relation):
        path = self.build(store_dir, relation)
        with open(path, "rb") as handle:
            header = handle.read(_HEADER.size)
        magic, _, _, dict_offset, dict_length, _, _ = _HEADER.unpack(header)
        assert magic == _MAGIC
        flip_byte(path, dict_offset + dict_length // 2)
        with pytest.raises(CorruptFileError, match="dictionary"):
            IndexStore(store_dir).bitmap_source("sales", "quantity")

    def test_payload_flip_caught_at_fetch(self, store_dir, relation):
        path = self.build(store_dir, relation)
        flip_byte(path, os.path.getsize(path) - 1)  # last payload byte
        store = IndexStore(store_dir)
        # Lazy open still succeeds — the damage sits in a payload.
        sources = [
            store.bitmap_source("sales", attr)
            for attr in ("quantity", "region")
        ]
        problems = store.verify("sales")
        assert problems and "checksum" in problems[0]
        # Exhaustive fetch must surface the damage as a typed error,
        # never as a silently wrong bitmap.
        stats = ExecutionStats()
        with pytest.raises(CorruptFileError, match="checksum"):
            for source in sources:
                for comp in range(1, source.base.n + 1):
                    for slot in source.stored_slots(comp):
                        source.fetch(comp, slot, stats)

    def test_truncated_file_fails_bounds_check(self, store_dir, relation):
        path = self.build(store_dir, relation)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 16)
        with pytest.raises(CorruptFileError):
            IndexStore(store_dir).bitmap_source("sales", "quantity")

    def test_delta_flip(self, store_dir, relation):
        self.build(store_dir, relation, with_delta=True)
        delta = os.path.join(store_dir, "sales.rbix.delta")
        flip_byte(delta, os.path.getsize(delta) - 1)
        with pytest.raises(CorruptFileError):
            IndexStore(store_dir).bitmap_source("sales", "quantity")

    def test_injected_read_corruption_is_typed(self, store_dir, relation):
        self.build(store_dir, relation)
        plan = FaultPlan([FaultSpec("disk.read", "corrupt")])
        store = IndexStore(store_dir, fault_plan=plan)
        source = store.bitmap_source("sales", "quantity")
        with pytest.raises(CorruptFileError, match="checksum"):
            source.fetch(1, 1, ExecutionStats())

    def test_scrub_quarantines_corrupt_relations(self, store_dir, relation):
        path = self.build(store_dir, relation)
        flip_byte(path, os.path.getsize(path) - 1)
        store = IndexStore(store_dir)
        assert store.scrub() == ["sales"]
        assert store.relations() == []
        sheltered = os.listdir(os.path.join(store_dir, ".quarantine"))
        assert "sales.rbix" in sheltered
        with pytest.raises(FileMissingError):
            store.verify("sales")
        # The store is immediately rebuildable in place.
        store.build(relation)
        assert store.verify("sales") == []

    def test_missing_relation_raises(self, store_dir):
        store = IndexStore(store_dir)
        with pytest.raises(FileMissingError):
            store.verify("ghost")


class TestEngineIntegration:
    def test_open_store_serves_ground_truth(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        engine = repro.open_store(store_dir)
        quantity = relation.column("quantity").values
        region = relation.column("region").values
        result = engine.query(AttributePredicate("quantity", ">", 30))
        np.testing.assert_array_equal(
            result.rids, np.nonzero(quantity > 30)[0]
        )
        result = engine.query(AttributePredicate("region", "=", "west"))
        np.testing.assert_array_equal(
            result.rids, np.nonzero(region == "west")[0]
        )
        engine.close()

    def test_explain_reports_real_io_counters(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        engine = repro.open_store(store_dir)
        report = engine.explain(AttributePredicate("quantity", "<=", 3))
        assert report.storage_io is not None
        assert report.storage_io["backend"] == "store"
        assert report.storage_io["payload_bytes_read"] > 0
        assert report.storage_io["bitmaps_materialized"] > 0
        text = report.format()
        assert "storage I/O" in text
        assert "payload bytes read" in text
        assert report.as_dict()["storage_io"]["backend"] == "store"
        engine.close()

    def test_process_backend_rejected_for_stored_relations(
        self, store_dir, relation
    ):
        with IndexStore(store_dir) as store:
            store.build(relation)
        engine = repro.open_store(store_dir)
        with pytest.raises(EngineConfigError, match="process"):
            engine.query(
                AttributePredicate("quantity", "<=", 3),
                options=QueryOptions(backend="processes", shards=2),
            )
        engine.close()

    def test_engine_close_releases_store(self, store_dir, relation):
        with IndexStore(store_dir) as store:
            store.build(relation)
        engine = repro.open_store(store_dir)
        engine.query(AttributePredicate("quantity", "<=", 3))
        engine.close()
        assert engine.storage._files == {}
