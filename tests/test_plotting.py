"""Tests for the ASCII scatter renderer and the CLI --plot path."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main
from repro.experiments.plotting import MARKERS, ascii_scatter


class TestAsciiScatter:
    def test_contains_axes_and_legend(self):
        text = ascii_scatter(
            {"a": [(0, 0), (10, 5)], "b": [(5, 2)]},
            xlabel="space",
            ylabel="time",
        )
        assert "space" in text
        assert "time" in text
        assert "legend: * a   o b" in text

    def test_markers_placed(self):
        text = ascii_scatter({"only": [(0, 0), (1, 1)]}, width=10, height=5)
        grid = "\n".join(line for line in text.splitlines() if "|" in line)
        assert grid.count("*") == 2

    def test_extreme_points_on_grid_corners(self):
        text = ascii_scatter({"s": [(0, 0), (1, 1)]}, width=10, height=4)
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].rstrip().endswith("*")  # max y at top right
        assert lines[-1].split("|")[1][0] == "*"  # min at bottom left

    def test_single_point_degenerate_span(self):
        text = ascii_scatter({"s": [(3, 3)]})
        assert "*" in text

    def test_empty_series_skipped(self):
        assert ascii_scatter({"empty": []}) == "(no data to plot)"

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [(0, 0)] for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError):
            ascii_scatter(series)

    def test_log_axes(self):
        text = ascii_scatter(
            {"s": [(1, 1), (1000, 100)]}, logx=True, logy=True
        )
        assert "1000" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(0, 1)]}, logx=True)
        with pytest.raises(ValueError):
            ascii_scatter({"s": [(1, -1)]}, logy=True)

    def test_axis_labels_show_value_range(self):
        text = ascii_scatter({"s": [(2, 10), (8, 40)]})
        assert "2" in text and "8" in text
        assert "40" in text and "10" in text


class TestSvgScatter:
    def test_valid_svg_with_points_and_legend(self):
        from repro.experiments.plotting import svg_scatter

        text = svg_scatter(
            {"range": [(1, 2), (3, 4)], "equality": [(2, 3)]},
            xlabel="space",
            ylabel="time",
            title="Figure 9",
        )
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert text.count("<circle") == 3 + 2  # points + legend dots
        assert "Figure 9" in text
        assert "space" in text and "time" in text

    def test_escapes_markup(self):
        from repro.experiments.plotting import svg_scatter

        text = svg_scatter({"a<b": [(0, 0)]}, title="x & y")
        assert "a&lt;b" in text
        assert "x &amp; y" in text

    def test_rejects_empty(self):
        from repro.experiments.plotting import svg_scatter

        with pytest.raises(ValueError):
            svg_scatter({"empty": []})

    def test_degenerate_single_point(self):
        from repro.experiments.plotting import svg_scatter

        assert "<circle" in svg_scatter({"s": [(5, 5)]})


class TestCliPlot:
    def test_plot_flag_renders_series(self, capsys):
        assert main(["fig14", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "|I|" in out

    def test_plot_flag_harmless_without_series(self, capsys):
        assert main(["table3", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" not in out

    def test_plot_with_out_saves_svg(self, capsys, tmp_path):
        assert main(["fig14", "--plot", "--out", str(tmp_path)]) == 0
        svg = tmp_path / "fig14.svg"
        assert svg.exists()
        assert svg.read_text().startswith("<svg")
