"""Unit and property tests for the WAH codec."""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.wah import (
    wah_and,
    wah_decode,
    wah_encode,
    wah_or,
    wah_popcount,
    wah_word_count,
)
from repro.errors import CorruptFileError

ZERO_FILL = 0x80000000  # a fill word with run length 0 (contributes nothing)
ONE_FILL_FLAG = 0xC0000000


def _payload(orig_len: int, words: list[int]) -> bytes:
    """Hand-assemble a WAH payload from a header length and raw words."""
    return struct.pack("<Q", orig_len) + np.array(words, dtype="<u4").tobytes()


def _with_zero_fills(encoded: bytes, positions: list[int]) -> bytes:
    """Insert zero-run fill words into an encoded payload's body."""
    words = list(np.frombuffer(encoded[8:], dtype="<u4"))
    for pos in sorted(positions, reverse=True):
        words.insert(pos % (len(words) + 1), ZERO_FILL)
    return encoded[:8] + np.array(words, dtype="<u4").tobytes()


class TestRoundTrip:
    def test_empty(self):
        assert wah_decode(wah_encode(b"")) == b""

    def test_all_zero_compresses_to_one_fill_word(self):
        data = bytes(10_000)
        encoded = wah_encode(data)
        assert wah_word_count(encoded) == 1
        assert wah_decode(encoded) == data

    def test_all_one_compresses_to_one_fill_word(self):
        # 31 bytes = 248 bits = 8 groups of 31 bits: no zero padding, so the
        # whole input is one all-ones fill run.
        data = b"\xff" * (31 * 100)
        encoded = wah_encode(data)
        assert wah_word_count(encoded) == 1
        assert wah_decode(encoded) == data

    def test_all_one_with_padding_tail(self):
        # A non-31-bit-aligned all-ones input ends in a literal group
        # (zero-padded), so exactly two words.
        data = b"\xff" * 10_000
        encoded = wah_encode(data)
        assert wah_word_count(encoded) == 2
        assert wah_decode(encoded) == data

    def test_random_data_round_trips(self, rng):
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert wah_decode(wah_encode(data)) == data

    def test_runs_compress_well(self, rng):
        # 0-runs and 1-runs of ~1000 bytes each.
        chunks = []
        for i in range(20):
            chunks.append((b"\x00" if i % 2 else b"\xff") * 1000)
        data = b"".join(chunks)
        encoded = wah_encode(data)
        assert len(encoded) < len(data) // 50
        assert wah_decode(encoded) == data

    def test_single_byte(self):
        for byte in (b"\x00", b"\x01", b"\xff", b"\xa5"):
            assert wah_decode(wah_encode(byte)) == byte

    def test_mixed_literal_and_fill(self):
        data = bytes(100) + b"\x37" * 7 + b"\xff" * 100 + b"\x01"
        assert wah_decode(wah_encode(data)) == data

    def test_incompressible_data_overhead_is_bounded(self, rng):
        data = rng.integers(0, 256, 31 * 128, dtype=np.uint8).tobytes()
        encoded = wah_encode(data)
        # Worst case: one 32-bit word per 31 input bits plus the header.
        assert len(encoded) <= len(data) * 32 // 31 + 16


class TestCorruption:
    def test_short_payload_raises(self):
        with pytest.raises(CorruptFileError):
            wah_decode(b"\x01\x02")

    def test_unaligned_body_raises(self):
        encoded = wah_encode(b"\x12\x34")
        with pytest.raises(CorruptFileError):
            wah_decode(encoded + b"\x00")

    def test_truncated_body_raises(self):
        encoded = wah_encode(bytes(1000))
        with pytest.raises(CorruptFileError):
            wah_decode(encoded[:-4])

    def test_declared_length_beyond_bits_raises(self):
        encoded = bytearray(wah_encode(b"\x00"))
        encoded[0] = 0xFF  # inflate the declared original length
        with pytest.raises(CorruptFileError):
            wah_decode(bytes(encoded))


class TestZeroRunFillAgreement:
    """Regression: every consumer must agree on zero-run fill words.

    A zero-length fill (``0x80000000``) contributes no groups.  The
    decoder always skipped it, but the streaming run reader used to treat
    it as end-of-stream — so ``wah_and``/``wah_or`` raised a spurious
    CorruptFileError and ``wah_popcount`` silently returned a short count
    on payloads the decoder considered valid.
    """

    # 31 bytes = 248 bits = exactly 8 groups of ones, so the canonical
    # encoding is a single one-fill word; the noisy variants interleave
    # zero-run fills that change nothing.
    DATA = b"\xff" * 31

    def noisy(self) -> bytes:
        return _payload(31, [ZERO_FILL, ONE_FILL_FLAG | 8])

    def test_decoder_skips_zero_run_fill(self):
        assert wah_decode(self.noisy()) == self.DATA

    def test_popcount_counts_past_zero_run_fill(self):
        assert wah_popcount(self.noisy()) == 248

    def test_binary_ops_accept_zero_run_fill(self):
        clean = wah_encode(self.DATA)
        assert wah_decode(wah_and(self.noisy(), clean)) == self.DATA
        assert wah_decode(wah_or(self.noisy(), clean)) == self.DATA

    def test_zero_run_one_fill_also_skipped(self):
        payload = _payload(31, [ONE_FILL_FLAG | 4, ONE_FILL_FLAG, ONE_FILL_FLAG | 4])
        assert wah_decode(payload) == self.DATA
        assert wah_popcount(payload) == 248

    def test_interleaved_zero_fills_everywhere(self, rng):
        data = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
        encoded = wah_encode(data)
        positions = [int(p) for p in rng.integers(0, 64, size=6)]
        noisy = _with_zero_fills(encoded, positions)
        assert wah_decode(noisy) == data
        assert wah_popcount(noisy) == wah_popcount(encoded)
        assert wah_decode(wah_and(noisy, encoded)) == data


class TestOverlongPayload:
    """Regression: a body with surplus whole groups must be rejected.

    ``wah_decode`` used to silently drop groups beyond the declared
    ``orig_len`` — mirroring the existing "fewer bits than declared"
    check, surplus groups now raise CorruptFileError too.
    """

    def test_surplus_fill_groups_raise(self):
        # Header says 4 bytes (2 groups); the body is a 5-group fill.
        with pytest.raises(CorruptFileError):
            wah_decode(_payload(4, [ZERO_FILL | 5]))

    def test_surplus_literal_word_raises(self):
        encoded = wah_encode(b"\xa5" * 4)
        extra = encoded + np.array([0x12345], dtype="<u4").tobytes()
        with pytest.raises(CorruptFileError):
            wah_decode(extra)

    def test_exact_group_count_still_decodes(self):
        data = b"\xa5" * 4
        assert wah_decode(wah_encode(data)) == data


@settings(max_examples=80, deadline=None)
@given(data=st.binary(max_size=4000))
def test_round_trip_property(data):
    assert wah_decode(wah_encode(data)) == data


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=1, max_size=2000), extra=st.integers(1, 40))
def test_fuzz_overlong_body_raises(data, extra):
    """Appending surplus fill groups to any valid payload must raise."""
    encoded = wah_encode(data)
    surplus = np.array([ZERO_FILL | extra], dtype="<u4").tobytes()
    with pytest.raises(CorruptFileError):
        wah_decode(encoded + surplus)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=2000), inflate=st.integers(4, 64))
def test_fuzz_short_body_raises(data, inflate):
    """Inflating the declared length past the body's groups must raise."""
    encoded = wah_encode(data)
    stretched = struct.pack("<Q", len(data) + inflate) + encoded[8:]
    with pytest.raises(CorruptFileError):
        wah_decode(stretched)


@settings(max_examples=60, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=2000),
    positions=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=8),
)
def test_fuzz_zero_run_fills_are_transparent(data, positions):
    """Zero-run fills anywhere in the body change nothing, on every path."""
    encoded = wah_encode(data)
    noisy = _with_zero_fills(encoded, positions)
    assert wah_decode(noisy) == data
    assert wah_popcount(noisy) == wah_popcount(encoded)
    assert wah_decode(wah_or(noisy, encoded)) == data


@settings(max_examples=30, deadline=None)
@given(
    run_lengths=st.lists(
        st.tuples(st.sampled_from([0, 255]), st.integers(1, 400)),
        min_size=1,
        max_size=20,
    )
)
def test_run_structured_round_trip(run_lengths):
    data = b"".join(bytes([value]) * count for value, count in run_lengths)
    assert wah_decode(wah_encode(data)) == data
