"""Unit and property tests for the WAH codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.wah import wah_decode, wah_encode, wah_word_count
from repro.errors import CorruptFileError


class TestRoundTrip:
    def test_empty(self):
        assert wah_decode(wah_encode(b"")) == b""

    def test_all_zero_compresses_to_one_fill_word(self):
        data = bytes(10_000)
        encoded = wah_encode(data)
        assert wah_word_count(encoded) == 1
        assert wah_decode(encoded) == data

    def test_all_one_compresses_to_one_fill_word(self):
        # 31 bytes = 248 bits = 8 groups of 31 bits: no zero padding, so the
        # whole input is one all-ones fill run.
        data = b"\xff" * (31 * 100)
        encoded = wah_encode(data)
        assert wah_word_count(encoded) == 1
        assert wah_decode(encoded) == data

    def test_all_one_with_padding_tail(self):
        # A non-31-bit-aligned all-ones input ends in a literal group
        # (zero-padded), so exactly two words.
        data = b"\xff" * 10_000
        encoded = wah_encode(data)
        assert wah_word_count(encoded) == 2
        assert wah_decode(encoded) == data

    def test_random_data_round_trips(self, rng):
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert wah_decode(wah_encode(data)) == data

    def test_runs_compress_well(self, rng):
        # 0-runs and 1-runs of ~1000 bytes each.
        chunks = []
        for i in range(20):
            chunks.append((b"\x00" if i % 2 else b"\xff") * 1000)
        data = b"".join(chunks)
        encoded = wah_encode(data)
        assert len(encoded) < len(data) // 50
        assert wah_decode(encoded) == data

    def test_single_byte(self):
        for byte in (b"\x00", b"\x01", b"\xff", b"\xa5"):
            assert wah_decode(wah_encode(byte)) == byte

    def test_mixed_literal_and_fill(self):
        data = bytes(100) + b"\x37" * 7 + b"\xff" * 100 + b"\x01"
        assert wah_decode(wah_encode(data)) == data

    def test_incompressible_data_overhead_is_bounded(self, rng):
        data = rng.integers(0, 256, 31 * 128, dtype=np.uint8).tobytes()
        encoded = wah_encode(data)
        # Worst case: one 32-bit word per 31 input bits plus the header.
        assert len(encoded) <= len(data) * 32 // 31 + 16


class TestCorruption:
    def test_short_payload_raises(self):
        with pytest.raises(CorruptFileError):
            wah_decode(b"\x01\x02")

    def test_unaligned_body_raises(self):
        encoded = wah_encode(b"\x12\x34")
        with pytest.raises(CorruptFileError):
            wah_decode(encoded + b"\x00")

    def test_truncated_body_raises(self):
        encoded = wah_encode(bytes(1000))
        with pytest.raises(CorruptFileError):
            wah_decode(encoded[:-4])

    def test_declared_length_beyond_bits_raises(self):
        encoded = bytearray(wah_encode(b"\x00"))
        encoded[0] = 0xFF  # inflate the declared original length
        with pytest.raises(CorruptFileError):
            wah_decode(bytes(encoded))


@settings(max_examples=80, deadline=None)
@given(data=st.binary(max_size=4000))
def test_round_trip_property(data):
    assert wah_decode(wah_encode(data)) == data


@settings(max_examples=30, deadline=None)
@given(
    run_lengths=st.lists(
        st.tuples(st.sampled_from([0, 255]), st.integers(1, 400)),
        min_size=1,
        max_size=20,
    )
)
def test_run_structured_round_trip(run_lengths):
    data = b"".join(bytes([value]) * count for value, count in run_lengths)
    assert wah_decode(wah_encode(data)) == data
