"""Tests for the equality/range component encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding import (
    EncodingScheme,
    EqualityEncodedComponent,
    RangeEncodedComponent,
    build_component,
    stored_bitmap_count,
)
from repro.errors import ValueOutOfRangeError

DIGITS = np.array([0, 2, 1, 2, 0, 3, 3, 1])


class TestEqualityEncoding:
    def test_one_bitmap_per_value(self):
        comp = EqualityEncodedComponent.build(DIGITS, base=4)
        assert comp.num_stored == 4
        assert comp.stored_slots() == (0, 1, 2, 3)

    def test_bitmap_contents(self):
        comp = EqualityEncodedComponent.build(DIGITS, base=4)
        for j in range(4):
            expected = (DIGITS == j)
            assert np.array_equal(comp.bitmap(j).to_bools(), expected)

    def test_base_two_stores_single_bitmap(self):
        digits = np.array([0, 1, 1, 0, 1])
        comp = EqualityEncodedComponent.build(digits, base=2)
        assert comp.num_stored == 1
        assert comp.stored_slots() == (1,)
        assert np.array_equal(comp.bitmap(1).to_bools(), digits == 1)

    def test_exactly_one_bit_per_row(self):
        comp = EqualityEncodedComponent.build(DIGITS, base=4)
        total = sum(comp.bitmap(j).to_bools().astype(int) for j in range(4))
        assert np.all(total == 1)

    def test_contains(self):
        comp = EqualityEncodedComponent.build(DIGITS, base=4)
        assert 0 in comp
        assert 4 not in comp

    def test_missing_slot_raises(self):
        comp = EqualityEncodedComponent.build(np.array([0, 1]), base=2)
        with pytest.raises(KeyError):
            comp.bitmap(0)


class TestRangeEncoding:
    def test_stores_base_minus_one_bitmaps(self):
        comp = RangeEncodedComponent.build(DIGITS, base=4)
        assert comp.num_stored == 3
        assert comp.stored_slots() == (0, 1, 2)

    def test_bitmap_contents_are_cumulative(self):
        comp = RangeEncodedComponent.build(DIGITS, base=4)
        for j in range(3):
            assert np.array_equal(comp.bitmap(j).to_bools(), DIGITS <= j)

    def test_monotone_nesting(self):
        """Paper invariant: B^j is a subset of B^(j+1)."""
        comp = RangeEncodedComponent.build(DIGITS, base=4)
        for j in range(2):
            lower = comp.bitmap(j)
            upper = comp.bitmap(j + 1)
            assert (lower & upper) == lower

    def test_top_bitmap_not_stored(self):
        comp = RangeEncodedComponent.build(DIGITS, base=4)
        with pytest.raises(KeyError):
            comp.bitmap(3)

    def test_base_two(self):
        digits = np.array([0, 1, 1, 0])
        comp = RangeEncodedComponent.build(digits, base=2)
        assert comp.num_stored == 1
        assert np.array_equal(comp.bitmap(0).to_bools(), digits == 0)


class TestHelpers:
    def test_build_component_dispatch(self):
        eq = build_component(DIGITS, 4, EncodingScheme.EQUALITY)
        rg = build_component(DIGITS, 4, EncodingScheme.RANGE)
        assert isinstance(eq, EqualityEncodedComponent)
        assert isinstance(rg, RangeEncodedComponent)

    @pytest.mark.parametrize(
        "base,encoding,expected",
        [
            (2, EncodingScheme.EQUALITY, 1),
            (3, EncodingScheme.EQUALITY, 3),
            (10, EncodingScheme.EQUALITY, 10),
            (2, EncodingScheme.RANGE, 1),
            (3, EncodingScheme.RANGE, 2),
            (10, EncodingScheme.RANGE, 9),
        ],
    )
    def test_stored_bitmap_count_theorem_5_1(self, base, encoding, expected):
        assert stored_bitmap_count(base, encoding) == expected

    def test_digits_validated(self):
        with pytest.raises(ValueOutOfRangeError):
            RangeEncodedComponent.build(np.array([4]), base=4)
        with pytest.raises(ValueOutOfRangeError):
            EqualityEncodedComponent.build(np.array([-1]), base=4)

    def test_degenerate_base_rejected(self):
        with pytest.raises(ValueOutOfRangeError):
            RangeEncodedComponent.build(np.array([0]), base=1)
