"""Tests for equi-depth histograms and their use in the optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValueOutOfRangeError
from repro.query.optimizer import Catalog, estimate_selectivity
from repro.query.predicate import parse_predicate
from repro.relation.histogram import EquiDepthHistogram
from repro.relation.relation import Relation
from repro.workloads.generators import uniform_values, zipf_values

OPERATORS = ("<", "<=", "=", "!=", ">=", ">")


def _actual(values: np.ndarray, op: str, probe) -> float:
    ops = {
        "<": values < probe,
        "<=": values <= probe,
        "=": values == probe,
        "!=": values != probe,
        ">=": values >= probe,
        ">": values > probe,
    }
    return float(ops[op].mean())


class TestConstruction:
    def test_bucket_count_capped_by_rows(self):
        hist = EquiDepthHistogram(np.array([1, 2, 3]), buckets=16)
        assert hist.num_buckets == 3

    def test_validation(self):
        with pytest.raises(ValueOutOfRangeError):
            EquiDepthHistogram(np.array([]))
        with pytest.raises(ValueOutOfRangeError):
            EquiDepthHistogram(np.array([1]), buckets=0)
        with pytest.raises(ValueOutOfRangeError):
            EquiDepthHistogram(np.zeros((2, 2)))

    def test_repr(self):
        hist = EquiDepthHistogram(np.arange(100))
        assert "buckets=16" in repr(hist)


class TestEstimates:
    def test_bounds(self):
        values = uniform_values(5000, 100, seed=1)
        hist = EquiDepthHistogram(values, buckets=20)
        for op in OPERATORS:
            for probe in (-5, 0, 33, 99, 150):
                estimate = hist.estimate(op, probe)
                assert 0.0 <= estimate <= 1.0

    def test_extremes(self):
        values = uniform_values(5000, 100, seed=1)
        hist = EquiDepthHistogram(values, buckets=20)
        assert hist.estimate("<=", 99) == pytest.approx(1.0)
        assert hist.estimate("<=", -1) == pytest.approx(0.0)
        assert hist.estimate(">", 99) == pytest.approx(0.0)
        assert hist.estimate("=", 500) == 0.0

    def test_unknown_operator(self):
        hist = EquiDepthHistogram(np.arange(10))
        with pytest.raises(ValueOutOfRangeError):
            hist.estimate("~", 3)

    @pytest.mark.parametrize("op", ["<=", ">", "="])
    def test_uniform_accuracy(self, op):
        values = uniform_values(20_000, 100, seed=2)
        hist = EquiDepthHistogram(values, buckets=32)
        for probe in (10, 25, 50, 75, 90):
            estimate = hist.estimate(op, probe)
            actual = _actual(values, op, probe)
            assert estimate == pytest.approx(actual, abs=0.05)

    def test_skewed_accuracy_beats_uniform_assumption(self):
        """The point of histograms: on Zipf data the uniform-dictionary
        estimator is far off and the histogram is not."""
        values = zipf_values(20_000, 100, skew=1.5, seed=3)
        relation = Relation.from_dict("t", {"a": values})
        hist = EquiDepthHistogram(values, buckets=32)
        predicate = parse_predicate("a <= 4")
        actual = _actual(values, "<=", 4)

        uniform_estimate = estimate_selectivity(relation, predicate)
        histogram_estimate = estimate_selectivity(
            relation, predicate, Catalog(histograms={"a": hist})
        )
        assert abs(histogram_estimate - actual) < abs(uniform_estimate - actual)
        assert abs(histogram_estimate - actual) < 0.1

    def test_catalog_without_histogram_falls_back(self):
        values = uniform_values(1000, 20, seed=4)
        relation = Relation.from_dict("t", {"a": values})
        predicate = parse_predicate("a <= 9")
        with_empty = estimate_selectivity(relation, predicate, Catalog())
        without = estimate_selectivity(relation, predicate)
        assert with_empty == without

    def test_complement_consistency(self):
        values = uniform_values(5000, 50, seed=5)
        hist = EquiDepthHistogram(values, buckets=16)
        for probe in (5, 20, 40):
            le = hist.estimate("<=", probe)
            gt = hist.estimate(">", probe)
            assert le + gt == pytest.approx(1.0)
            lt = hist.estimate("<", probe)
            ge = hist.estimate(">=", probe)
            assert lt + ge == pytest.approx(1.0, abs=1e-9)
