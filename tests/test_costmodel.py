"""Tests for the analytical cost model (Theorem 5.1, Eq. 4/5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import evaluate
from repro.core.index import BitmapIndex
from repro.errors import BufferConfigError, InvalidPredicateError
from repro.stats import ExecutionStats
from repro.workloads.queries import full_query_space

base_strategy = st.lists(st.integers(2, 10), min_size=1, max_size=4).map(
    lambda bs: Base(tuple(sorted(bs)))
)


class TestSpace:
    def test_range_formula(self):
        assert costmodel.space_range(Base((10, 10))) == 18
        assert costmodel.space_range(Base((1000,))) == 999
        assert costmodel.space_range(Base.binary(1000)) == 10

    def test_equality_formula_with_complement_trick(self):
        assert costmodel.space_equality(Base((10, 10))) == 20
        assert costmodel.space_equality(Base((2, 2, 2))) == 3
        assert costmodel.space_equality(Base((3, 2))) == 4

    def test_space_matches_built_index(self, rng):
        values = rng.integers(0, 30, 50)
        for base in (Base((30,)), Base((6, 5)), Base((2, 4, 4))):
            for encoding in EncodingScheme:
                index = BitmapIndex(values, 30, base, encoding)
                assert index.num_bitmaps == costmodel.space(base, encoding)


class TestClosedFormTime:
    def test_eq4_known_values(self):
        # Time(<C>) = 2(1 - 1/C) + (2/3)(1/C - 1).
        assert costmodel.time_range(Base((100,))) == pytest.approx(1.32)
        # Uniform base-10, two components.
        assert costmodel.time_range(Base((10, 10))) == pytest.approx(3.0)

    def test_eq4_decreases_with_larger_component_one(self):
        # Same multiset, larger base on component 1 is faster.
        fast = costmodel.time_range(Base((5, 20)))
        slow = costmodel.time_range(Base((20, 5)))
        assert fast < slow

    def test_equality_time_known_value(self):
        # Single-component equality, C=100: range ops scan
        # E[min(v+1, 99-v)] = 25 on average; equality ops scan 1.
        t = costmodel.time_equality(Base((100,)))
        assert t == pytest.approx((4 / 6) * 25.0 + (2 / 6) * 1.0)

    def test_dispatch(self):
        base = Base((6, 6))
        assert costmodel.time(base, EncodingScheme.RANGE) == costmodel.time_range(base)
        assert costmodel.time(base, EncodingScheme.EQUALITY) == costmodel.time_equality(base)


class TestExactVsClosedForm:
    @pytest.mark.parametrize(
        "base",
        [Base((24,)), Base((6, 4)), Base((2, 3, 4)), Base.binary(24)],
        ids=str,
    )
    def test_close_when_capacity_equals_cardinality(self, base):
        c = base.capacity
        for encoding in EncodingScheme:
            exact = costmodel.expected_scans(base, c, encoding)
            closed = costmodel.time(base, encoding)
            # They differ only through the v -> v-1 shift at the domain
            # edge, which is O(n/C).
            assert abs(exact - closed) <= 2.0 * base.n / c


class TestExactVsInstrumented:
    @pytest.mark.parametrize(
        "base", [Base((20,)), Base((5, 4)), Base((2, 2, 5))], ids=str
    )
    @pytest.mark.parametrize(
        "encoding,algorithm",
        [
            (EncodingScheme.RANGE, "range_eval"),
            (EncodingScheme.RANGE, "range_eval_opt"),
            (EncodingScheme.EQUALITY, "equality_eval"),
        ],
    )
    def test_enumeration_equals_measurement(self, base, encoding, algorithm):
        cardinality = 20
        rng = np.random.default_rng(0)
        values = rng.integers(0, cardinality, 64)
        index = BitmapIndex(values, cardinality, base, encoding)
        total = 0
        count = 0
        for predicate in full_query_space(cardinality):
            stats = ExecutionStats()
            evaluate(index, predicate, algorithm=algorithm, stats=stats)
            total += stats.scans
            count += 1
        measured = total / count
        exact = costmodel.expected_scans(base, cardinality, encoding, algorithm)
        assert measured == pytest.approx(exact, abs=1e-12)

    def test_range_eval_cost_is_operator_independent(self):
        # RangeEval's scan count depends only on the constant's digits.
        base = Base((5, 4))
        for v in range(20):
            counts = {
                costmodel.scans_for_predicate(
                    base, 20, op, v, EncodingScheme.RANGE, "range_eval"
                )
                for op in ("<", "<=", "=", "!=", ">=", ">")
            }
            assert len(counts) == 1


class TestExpectedScansValidation:
    def test_algorithm_encoding_mismatch(self):
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans(
                Base((4,)), 4, EncodingScheme.EQUALITY, "range_eval_opt"
            )
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans(
                Base((4,)), 4, EncodingScheme.RANGE, "equality_eval"
            )

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidPredicateError):
            costmodel.expected_scans(Base((4,)), 4, EncodingScheme.RANGE, "x")

    def test_auto_algorithm(self):
        base = Base((6, 4))
        assert costmodel.expected_scans(
            base, 24, EncodingScheme.RANGE
        ) == costmodel.expected_scans(base, 24, EncodingScheme.RANGE, "range_eval_opt")


class TestBufferedTime:
    def test_no_buffering_matches_eq4(self):
        base = Base((10, 10))
        assert costmodel.time_range_buffered(base, (0, 0)) == pytest.approx(
            costmodel.time_range(base)
        )

    def test_full_buffering_is_free(self):
        base = Base((10, 10))
        assert costmodel.time_range_buffered(base, (9, 9)) == pytest.approx(0.0)

    def test_monotone_in_each_component(self):
        base = Base((10, 10))
        previous = costmodel.time_range(base)
        for f in range(1, 10):
            current = costmodel.time_range_buffered(base, (f, 0))
            assert current < previous
            previous = current

    def test_assignment_length_checked(self):
        with pytest.raises(BufferConfigError):
            costmodel.time_range_buffered(Base((10, 10)), (1,))

    def test_assignment_bounds_checked(self):
        with pytest.raises(BufferConfigError):
            costmodel.time_range_buffered(Base((10, 10)), (10, 0))
        with pytest.raises(BufferConfigError):
            costmodel.time_range_buffered(Base((10, 10)), (-1, 0))


@settings(max_examples=60, deadline=None)
@given(base=base_strategy)
def test_time_positive_and_bounded(base):
    """Eq. 4's value lies in (0, 2n): at most two scans per component."""
    t = costmodel.time_range(base)
    assert 0 < t < 2 * base.n


@settings(max_examples=60, deadline=None)
@given(base=base_strategy, data=st.data())
def test_exact_scans_nonnegative_and_bounded(base, data):
    cardinality = data.draw(st.integers(2, base.capacity))
    for encoding in EncodingScheme:
        value = costmodel.expected_scans(base, cardinality, encoding)
        assert 0 <= value
        if encoding is EncodingScheme.RANGE:
            assert value <= 2 * base.n
