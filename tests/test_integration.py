"""End-to-end lifecycle integration test.

One scenario exercising the whole stack in sequence: generate a
warehouse, design indexes under a budget, query through every path,
aggregate, maintain (append/update/delete), persist to a real filesystem,
reload, and verify everything still agrees with ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Table
from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.storage.buffer import BufferPool
from repro.storage.fsdisk import FileSystemDisk
from repro.storage.schemes import open_scheme, write_index
from repro.workloads.generators import zipf_values
from repro.workloads.tpcd import lineitem_relation


def test_warehouse_lifecycle(tmp_path):
    # --- build ---------------------------------------------------------
    rng = np.random.default_rng(2024)
    table = Table(
        "warehouse",
        {
            "region": rng.integers(0, 40, 5000),
            "category": zipf_values(5000, 12, skew=1.2, seed=9),
            "units": rng.integers(1, 200, 5000),
        },
    )
    table.design_indexes(
        30, weights={"region": 2.0}, attributes=["region", "category"]
    )
    table.create_rid_index("region")
    table.analyze("category")

    # --- query through the optimizer and the expression layer ----------
    queries = [
        "region <= 19 and category = 1",
        "region in (0, 5, 39) or category >= 10",
        "not region <= 19",
        "category between 2 and 4",
    ]
    before = {text: table.select(text) for text in queries}
    for text, rids in before.items():
        from repro.query.expression import parse_expression

        truth = np.nonzero(parse_expression(text).mask(table.relation))[0]
        assert np.array_equal(rids, truth), text

    # --- aggregate -----------------------------------------------------
    units = table.relation.column("units").values
    mask = table.relation.column("region").values <= 19
    assert table.aggregate("units", "sum", where="region <= 19") == int(
        units[mask].sum()
    )

    # --- persist and reload from a real directory ----------------------
    disk = FileSystemDisk(str(tmp_path / "db"))
    table.save(disk, "warehouse_v1")
    restored = Table.load(disk, "warehouse_v1")
    for text in queries:
        assert np.array_equal(restored.select(text), before[text]), text

    # --- maintain a standalone index and keep it exact ------------------
    index = restored.catalog.bitmap_indexes["region"]
    assert isinstance(index, BitmapIndex)
    index.append(np.array([0, 39, 17]))
    index.update(0, 39)
    index.delete(1)
    for op in ("<=", "=", "!="):
        for v in (0, 17, 39):
            assert evaluate(index, Predicate(op, v)) == index.naive_eval(op, v)


def test_storage_and_buffering_stack(tmp_path):
    """Index -> compressed disk files -> buffer pool -> evaluation."""
    relation = lineitem_relation(4000, seed=3)
    column = relation.column("quantity")
    index = BitmapIndex(column.codes, column.cardinality)
    disk = FileSystemDisk(str(tmp_path / "store"))
    write_index(disk, "qty", index, "cBS")

    reopened = open_scheme(disk, "qty")
    pool = BufferPool(reopened, capacity=6)
    for predicate in (Predicate("<=", 10), Predicate("=", 25), Predicate(">", 40)):
        got = evaluate(pool, predicate)
        assert got == index.naive_eval(predicate.op, predicate.value)
        pool.reset_cache()
    assert pool.hits > 0 or pool.misses > 0


def test_quick_report_is_clean():
    """The claim audit doubles as the repository's smoke test."""
    from repro.experiments.claims import verify_all

    checks = verify_all(quick=True)
    assert all(c.passed for c in checks)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_stack_consistency(seed, tmp_path):
    """Random small tables: select results survive save/load exactly."""
    rng = np.random.default_rng(seed)
    table = Table(
        "t",
        {
            "a": rng.integers(0, 15, 400),
            "b": rng.integers(0, 6, 400),
        },
    )
    table.create_index("a")
    table.create_index("b")
    text = "a <= 7 or (b = 2 and not a = 3)"
    expected = table.select(text)
    disk = FileSystemDisk(str(tmp_path / f"db{seed}"))
    table.save(disk, "t")
    assert np.array_equal(Table.load(disk, "t").select(text), expected)
