"""Integration tests: every experiment runs and reproduces the paper's shape.

These use scaled-down parameters so the full suite stays fast; the
benchmark harness runs the real configurations.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.__main__ import main, run_experiment
from repro.experiments.harness import ExperimentResult, format_table, save_results


class TestTable1:
    def test_all_counts_match_formulas(self):
        from repro.experiments import table1

        result = table1.run(quick=True)
        assert all(row[-1] == "yes" for row in result.rows)

    def test_covers_all_operators_and_algorithms(self):
        from repro.experiments import table1

        result = table1.run(quick=True)
        algorithms = {row[1] for row in result.rows}
        assert algorithms == {"range_eval", "range_eval_opt"}
        assert len({row[2] for row in result.rows}) == 6


class TestFig8:
    def test_opt_dominates(self):
        from repro.experiments import fig8

        result = fig8.run(quick=True, cardinality=20, base_step=2)
        for row in result.rows:
            base, n, scans_re, scans_opt, ops_re, ops_opt = row
            assert scans_opt <= scans_re + 1e-9
            assert ops_opt <= ops_re + 1e-9

    def test_single_component_base_is_fastest(self):
        from repro.experiments import fig8

        result = fig8.run(quick=True, cardinality=20, base_step=1)
        by_base = {row[0]: row[3] for row in result.rows}
        assert by_base[20] == min(by_base.values())


class TestFig9:
    def test_range_front_dominates_equality(self):
        from repro.experiments import fig9

        results = fig9.run(quick=True, cardinalities=(30,))
        (result,) = results
        range_points = [
            (row[2], row[3]) for row in result.rows if row[0] == "range"
        ]
        equality_points = [
            (row[2], row[3]) for row in result.rows if row[0] == "equality"
        ]
        assert range_points and equality_points
        dominated = sum(
            1
            for es, et in equality_points
            if any(rs <= es and rt <= et + 1e-9 for rs, rt in range_points)
        )
        assert dominated / len(equality_points) >= 0.8


class TestFig10:
    def test_space_optimal_family_approximates_pareto_front(self):
        from repro.experiments import fig10

        result = fig10.run(quick=True, cardinality=36)
        note = next(n for n in result.notes if "space-optimal family" in n)
        covered, total = note.split()[0].split("/")
        # The paper claims approximation, not identity: most family points
        # sit on the overall front.
        assert int(covered) >= int(total) / 2

    def test_space_optimal_family_is_a_staircase(self):
        from repro.experiments import fig10

        family = fig10.space_optimal_family(36)
        spaces = [p.space for p in family]
        times = [p.time for p in family]
        assert spaces == sorted(spaces, reverse=True)
        assert times == sorted(times)


class TestFig11:
    def test_knee_is_two_components_and_matches_theorem(self):
        from repro.experiments import fig11

        for cardinality in (36, 100, 250):
            result = fig11.run(quick=True, cardinality=cardinality)
            knee_rows = [row for row in result.rows if row[4]]
            assert len(knee_rows) == 1
            assert knee_rows[0][0] == 2  # knee at n = 2
            assert any("matches" in note for note in result.notes)


class TestTable2:
    def test_heuristic_quality(self):
        from repro.experiments import table2

        result = table2.run(quick=True, cardinalities=(36, 60))
        for row in result.rows:
            assert row[2] >= 90.0  # percent optimal


class TestFig14:
    def test_hump_shape(self):
        from repro.experiments import fig14

        result = fig14.run(quick=True, cardinality=60)
        sizes = [row[1] for row in result.rows]
        assert sizes[-1] == 1  # generous budgets early-exit
        assert max(sizes) > 10  # a real hump in between


class TestTable3:
    def test_cardinalities(self):
        from repro.experiments import table3

        result = table3.run(quick=True, rows1=2000, rows2=60_000)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["data set 1"][4] == 50
        assert by_name["data set 2"][4] == 2406


class TestTable4:
    def test_ccs_best_on_single_component(self):
        from repro.experiments import table4

        results = table4.run(quick=True, rows1=3000, rows2=2000, include_wah=False)
        for result in results:
            first = result.rows[0]  # the 1-component index
            assert first[3] <= first[2]  # cCS% <= cBS%

    def test_compression_gain_shrinks_with_components(self):
        from repro.experiments import table4

        results = table4.run(quick=True, rows1=3000, rows2=2000, include_wah=False)
        for result in results:
            assert result.rows[-1][2] > result.rows[0][2]  # cBS% grows with n


class TestFig16:
    def test_runs_and_reports_all_schemes(self):
        from repro.experiments import fig16

        result = fig16.run(quick=True, num_rows=4000, max_n=3)
        assert {row[1] for row in result.rows} == {"BS", "cBS", "cCS"}
        assert len({row[0] for row in result.rows}) == 3

    def test_ccs_smallest_at_one_component(self):
        from repro.experiments import fig16

        result = fig16.run(quick=True, num_rows=4000, max_n=2)
        sizes = {(row[0], row[1]): row[2] for row in result.rows}
        assert sizes[(1, "cCS")] < sizes[(1, "BS")]

    def test_dataset_two_variant_amplifies_the_shape(self):
        from repro.experiments import fig16

        result = fig16.run(
            quick=True, num_rows=5000, max_n=2, dataset=2, max_queries=120
        )
        sizes = {(row[0], row[1]): row[2] for row in result.rows}
        times = {(row[0], row[1]): row[3] for row in result.rows}
        # Extreme compression AND extreme decompression penalty at n = 1.
        assert sizes[(1, "cCS")] < sizes[(1, "BS")] / 10
        assert times[(1, "cCS")] > 3 * times[(1, "BS")]

    def test_dataset_validation(self):
        from repro.experiments import fig16

        with pytest.raises(ValueError):
            fig16.run(quick=True, num_rows=1000, dataset=3)


class TestFig17:
    def test_min_time_monotone(self):
        from repro.experiments import fig17

        result = fig17.run(quick=True, cardinality=36, buffers=(0, 1, 2, 4))
        times = [row[2] for row in result.rows]
        assert times == sorted(times, reverse=True) or all(
            times[i] >= times[i + 1] - 1e-12 for i in range(len(times) - 1)
        )


class TestCrossover:
    def test_crossover_near_one_thirty_second(self):
        from repro.experiments import crossover

        result = crossover.run(quick=True, num_rows=30_000, cardinality=1000)
        note = result.notes[0]
        assert "0.0312" in note
        # Parse the first observed bitmap-win selectivity from the note.
        observed = float(note.rsplit(" ", 1)[1])
        assert 1 / 32 - 0.01 <= observed <= 1 / 32 + 0.01


class TestHarness:
    def test_format_table(self):
        result = ExperimentResult("x", "demo", ["a", "b"])
        result.add(1, 2.5)
        result.note("hello")
        text = format_table(result)
        assert "demo" in text and "2.5000" in text and "note: hello" in text

    def test_save_results(self, tmp_path):
        result = ExperimentResult("demo", "t", ["a"])
        result.add(1)
        paths = save_results([result], str(tmp_path))
        assert len(paths) == 1
        assert os.path.exists(paths[0])
        with open(paths[0]) as handle:
            assert "demo" in handle.read()

    def test_registry_modules_all_runnable(self):
        # Smoke check: the registry names importable modules with run().
        import importlib

        for exp_id in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{exp_id}")
            assert callable(module.run)

    def test_cli_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_cli_unknown_experiment(self):
        assert main(["nope"]) == 2

    def test_cli_runs_one(self, capsys, tmp_path):
        assert main(["table3", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert (tmp_path / "table3.txt").exists()

    def test_run_experiment_normalizes_lists(self):
        results = run_experiment("table3", quick=True)
        assert isinstance(results, list)
        assert all(isinstance(r, ExperimentResult) for r in results)


class TestFig13:
    def test_window_contains_optimum(self):
        from repro.experiments import fig13

        result = fig13.run(quick=True, cardinality=36)
        assert all(row[6] == "yes" for row in result.rows)
        # The window is a real narrowing: never the full 1..max range.
        from repro.core.optimize import max_components

        assert all(row[3] <= max_components(36) for row in result.rows)

    def test_bounds_ordered(self):
        from repro.experiments import fig13

        result = fig13.run(quick=True, cardinality=60)
        for row in result.rows:
            assert row[1] <= row[2]
