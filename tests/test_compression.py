"""Tests for the bitmap codec registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.compression import (
    NullCodec,
    WahCodec,
    ZlibCodec,
    get_codec,
    register_codec,
)
from repro.errors import CorruptFileError


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_codec("zlib").name == "zlib"
        assert get_codec("wah").name == "wah"
        assert get_codec("none").name == "none"

    def test_none_maps_to_identity(self):
        codec = get_codec(None)
        assert codec.encode(b"abc") == b"abc"

    def test_instance_passthrough(self):
        codec = ZlibCodec(level=9)
        assert get_codec(codec) is codec

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="zlib"):
            get_codec("snappy")

    def test_register_custom_codec(self):
        class Reversing:
            name = "reversing"

            def encode(self, data: bytes) -> bytes:
                return data[::-1]

            def decode(self, blob: bytes) -> bytes:
                return blob[::-1]

        register_codec(Reversing())
        assert get_codec("reversing").decode(b"cba") == b"abc"


class TestZlib:
    def test_round_trip(self):
        codec = ZlibCodec()
        data = b"hello bitmap world " * 100
        assert codec.decode(codec.encode(data)) == data

    def test_compresses_runs(self):
        codec = ZlibCodec()
        data = bytes(100_000)
        assert len(codec.encode(data)) < 1000

    def test_level_validated(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=0)
        with pytest.raises(ValueError):
            ZlibCodec(level=10)

    def test_level_in_name(self):
        assert ZlibCodec(level=9).name == "zlib9"
        assert ZlibCodec(level=6).name == "zlib"

    def test_corrupt_payload_raises(self):
        with pytest.raises(CorruptFileError):
            ZlibCodec().decode(b"not zlib data")


class TestNull:
    def test_identity(self):
        codec = NullCodec()
        assert codec.encode(b"x") == b"x"
        assert codec.decode(b"x") == b"x"


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=2000), codec_name=st.sampled_from(["zlib", "wah", "none"]))
def test_all_codecs_round_trip(data, codec_name):
    codec = get_codec(codec_name)
    assert codec.decode(codec.encode(data)) == data


def test_wah_codec_wraps_module():
    codec = WahCodec()
    data = bytes(5000)
    assert codec.decode(codec.encode(data)) == data
