"""Tests for the three evaluation algorithms.

The central property: for every base, encoding, operator, and constant —
including out-of-range constants — each algorithm returns exactly the
rows a naive scan returns, and its physical scan count equals the
arithmetic mirror in :mod:`repro.core.costmodel`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import costmodel
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import (
    OPERATORS,
    Predicate,
    equality_eval,
    evaluate,
    range_eval,
    range_eval_opt,
)
from repro.core.index import BitmapIndex
from repro.errors import InvalidPredicateError
from repro.stats import ExecutionStats

from conftest import make_index

CARDINALITY = 36
BASES = [
    Base((36,)),
    Base((6, 6)),
    Base((4, 3, 3)),
    Base((2, 2, 3, 3)),
    Base.binary(36),
    Base((5, 8)),  # capacity 40 > C: non-tight coverage
]
ALGORITHMS = {
    "range_eval": EncodingScheme.RANGE,
    "range_eval_opt": EncodingScheme.RANGE,
    "equality_eval": EncodingScheme.EQUALITY,
}


def _index_for(base: Base, encoding: EncodingScheme, seed: int = 3) -> BitmapIndex:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, CARDINALITY, 250)
    return BitmapIndex(values, CARDINALITY, base, encoding)


class TestPredicate:
    def test_valid_operators(self):
        for op in OPERATORS:
            Predicate(op, 3)

    def test_invalid_operator(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("==", 3)

    def test_is_range(self):
        assert Predicate("<", 1).is_range
        assert not Predicate("=", 1).is_range

    def test_matches(self):
        values = np.array([1, 5, 3])
        assert Predicate(">", 2).matches(values).tolist() == [False, True, True]

    def test_str(self):
        assert str(Predicate("<=", 7)) == "A <= 7"


@pytest.mark.parametrize("base", BASES, ids=str)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestCorrectnessExhaustive:
    def test_all_operators_and_values(self, base, algorithm):
        index = _index_for(base, ALGORITHMS[algorithm])
        for op in OPERATORS:
            for v in range(-2, CARDINALITY + 2):
                got = evaluate(index, Predicate(op, v), algorithm=algorithm)
                assert got == index.naive_eval(op, v), (op, v)

    def test_scan_counts_match_cost_model(self, base, algorithm):
        index = _index_for(base, ALGORITHMS[algorithm])
        for op in OPERATORS:
            for v in range(-2, CARDINALITY + 2):
                stats = ExecutionStats()
                evaluate(index, Predicate(op, v), algorithm=algorithm, stats=stats)
                expected = costmodel.scans_for_predicate(
                    base, CARDINALITY, op, v, ALGORITHMS[algorithm], algorithm
                )
                assert stats.scans == expected, (op, v)


class TestNulls:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_nulls_masked_out(self, algorithm):
        index = make_index(
            cardinality=20,
            base=Base((5, 4)),
            encoding=ALGORITHMS[algorithm],
            nulls=True,
            seed=9,
        )
        for op in OPERATORS:
            for v in (-1, 0, 7, 19, 20):
                got = evaluate(index, Predicate(op, v), algorithm=algorithm)
                assert got == index.naive_eval(op, v), (op, v)

    def test_not_equal_excludes_nulls(self):
        values = np.array([1, 2, 3, 2])
        nulls = np.array([False, True, False, False])
        index = BitmapIndex(values, 4, nulls=nulls)
        got = evaluate(index, Predicate("!=", 2))
        assert got.indices().tolist() == [0, 2]


class TestAlgorithmEquivalence:
    def test_both_range_algorithms_agree(self):
        index = _index_for(Base((4, 3, 3)), EncodingScheme.RANGE)
        for op in OPERATORS:
            for v in range(CARDINALITY):
                a = range_eval(index, Predicate(op, v))
                b = range_eval_opt(index, Predicate(op, v))
                assert a == b, (op, v)

    def test_opt_never_scans_more(self):
        index = _index_for(Base((4, 3, 3)), EncodingScheme.RANGE)
        for op in OPERATORS:
            for v in range(CARDINALITY):
                s_old, s_new = ExecutionStats(), ExecutionStats()
                range_eval(index, Predicate(op, v), s_old)
                range_eval_opt(index, Predicate(op, v), s_new)
                assert s_new.scans <= s_old.scans, (op, v)
                assert s_new.ops <= s_old.ops, (op, v)

    def test_opt_saves_one_scan_on_worst_case_range_predicate(self):
        base = Base((10, 10))
        rng = np.random.default_rng(3)
        index = BitmapIndex(rng.integers(0, 100, 250), 100, base)
        v = base.compose((5, 5))
        s_old, s_new = ExecutionStats(), ExecutionStats()
        range_eval(index, Predicate("<=", v), s_old)
        range_eval_opt(index, Predicate("<=", v), s_new)
        assert s_old.scans == 4  # 2n
        assert s_new.scans == 3  # 2n - 1


class TestDispatch:
    def test_auto_picks_by_encoding(self):
        range_index = _index_for(Base((6, 6)), EncodingScheme.RANGE)
        eq_index = _index_for(Base((6, 6)), EncodingScheme.EQUALITY)
        assert evaluate(range_index, Predicate("=", 3)) == range_index.naive_eval("=", 3)
        assert evaluate(eq_index, Predicate("=", 3)) == eq_index.naive_eval("=", 3)

    def test_unknown_algorithm(self):
        index = _index_for(Base((6, 6)), EncodingScheme.RANGE)
        with pytest.raises(InvalidPredicateError):
            evaluate(index, Predicate("=", 3), algorithm="magic")

    def test_encoding_mismatch_rejected(self):
        range_index = _index_for(Base((6, 6)), EncodingScheme.RANGE)
        eq_index = _index_for(Base((6, 6)), EncodingScheme.EQUALITY)
        with pytest.raises(InvalidPredicateError):
            equality_eval(range_index, Predicate("=", 3))
        with pytest.raises(InvalidPredicateError):
            range_eval_opt(eq_index, Predicate("=", 3))
        with pytest.raises(InvalidPredicateError):
            range_eval(eq_index, Predicate("=", 3))


class TestTrivialConstants:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_no_scans_for_out_of_range_constants(self, algorithm):
        index = _index_for(Base((6, 6)), ALGORITHMS[algorithm])
        for op in OPERATORS:
            for v in (-100, -1, CARDINALITY, CARDINALITY + 100):
                stats = ExecutionStats()
                evaluate(index, Predicate(op, v), algorithm=algorithm, stats=stats)
                assert stats.scans == 0, (op, v)

    def test_boundary_constants_trivial_for_le(self):
        index = _index_for(Base((6, 6)), EncodingScheme.RANGE)
        stats = ExecutionStats()
        # A <= C-1 is everything; A < 0 is nothing: no scans either way.
        range_eval_opt(index, Predicate("<=", CARDINALITY - 1), stats)
        range_eval_opt(index, Predicate("<", 0), stats)
        range_eval_opt(index, Predicate(">=", 0), stats)
        range_eval_opt(index, Predicate(">", CARDINALITY - 1), stats)
        assert stats.scans == 0


@settings(max_examples=60, deadline=None)
@given(
    bases=st.lists(st.integers(2, 9), min_size=1, max_size=4),
    op=st.sampled_from(OPERATORS),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_random_index_matches_naive(bases, op, seed, data):
    """Property: any base, any encoding, any predicate — matches the scan."""
    base = Base(tuple(bases))
    cardinality = data.draw(st.integers(2, base.capacity))
    v = data.draw(st.integers(-2, cardinality + 1))
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, 80)
    for encoding, algorithm in (
        (EncodingScheme.RANGE, "range_eval"),
        (EncodingScheme.RANGE, "range_eval_opt"),
        (EncodingScheme.EQUALITY, "equality_eval"),
    ):
        index = BitmapIndex(values, cardinality, base, encoding)
        got = evaluate(index, Predicate(op, v), algorithm=algorithm)
        assert got == index.naive_eval(op, v)
