"""Tests for the self-auditing claim report."""

from __future__ import annotations


from repro.experiments import EXPERIMENTS
from repro.experiments.__main__ import main
from repro.experiments.claims import (
    ClaimCheck,
    _CHECKERS,
    format_report,
    verify_all,
    verify_experiment,
)
from repro.experiments.harness import ExperimentResult


class TestCheckers:
    def test_every_experiment_has_a_checker(self):
        assert set(_CHECKERS) == set(EXPERIMENTS)

    def test_all_claims_pass_in_quick_mode(self):
        checks = verify_all(quick=True)
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(f"{c.exp_id}: {c.claim} ({c.detail})" for c in failed)
        assert len(checks) >= 25

    def test_malformed_result_reported_as_failure(self):
        bogus = ExperimentResult("table1", "t", ["x"])
        checks = verify_experiment("table1", [bogus])
        assert len(checks) == 1
        assert not checks[0].passed

    def test_unknown_experiment_yields_no_checks(self):
        assert verify_experiment("nope", []) == []


class TestReport:
    def test_format(self):
        checks = [
            ClaimCheck("a", "works", True, ""),
            ClaimCheck("b", "breaks", False, "oops"),
        ]
        text = format_report(checks)
        assert "1/2 claims reproduced" in text
        assert "| a | works | PASS |" in text
        assert "| b | breaks | FAIL | oops |" in text

    def test_cli_report(self, capsys, tmp_path):
        code = main(["report", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "claims reproduced" in out
        assert (tmp_path / "claim_report.md").exists()
        assert code == 0
