"""Tests for the real-filesystem disk backend."""

from __future__ import annotations

import pytest

from repro.core.decomposition import Base
from repro.core.evaluation import Predicate, evaluate
from repro.errors import CorruptFileError, FileMissingError, StorageError
from repro.storage.fsdisk import FileSystemDisk
from repro.storage.schemes import open_scheme, write_index

from conftest import make_index


@pytest.fixture
def disk(tmp_path) -> FileSystemDisk:
    return FileSystemDisk(str(tmp_path / "store"))


class TestBasicOperations:
    def test_write_read_round_trip(self, disk):
        disk.write("a/b", b"hello")
        assert disk.read("a/b") == b"hello"
        assert disk.exists("a/b")

    def test_accounting(self, disk):
        disk.write("f", b"12345")
        disk.read("f")
        assert disk.stats.bytes_written == 5
        assert disk.stats.bytes_read == 5

    def test_missing_file(self, disk):
        with pytest.raises(FileMissingError):
            disk.read("nope")
        with pytest.raises(FileMissingError):
            disk.delete("nope")
        with pytest.raises(FileMissingError):
            disk.size_of("nope")

    def test_list_files(self, disk):
        disk.write("x/a", b"")
        disk.write("x/b", b"")
        disk.write("y/c", b"")
        assert disk.list_files("x/") == ["x/a", "x/b"]
        assert len(disk.list_files()) == 3

    def test_delete(self, disk):
        disk.write("f", b"1")
        disk.delete("f")
        assert not disk.exists("f")

    def test_total_bytes(self, disk):
        disk.write("x/a", b"123")
        disk.write("x/b", b"4567")
        assert disk.total_bytes("x/") == 7

    def test_overwrite(self, disk):
        disk.write("f", b"old")
        disk.write("f", b"new!")
        assert disk.read("f") == b"new!"


class TestPathSafety:
    @pytest.mark.parametrize("path", ["../escape", "a/../../b", "a//b", ""])
    def test_traversal_rejected(self, disk, path):
        with pytest.raises(StorageError):
            disk.write(path, b"x")


class TestFailureInjection:
    def test_truncate(self, disk):
        disk.write("f", b"123456")
        disk.truncate("f", 2)
        assert disk.read("f") == b"12"

    def test_corrupt_byte(self, disk):
        disk.write("f", b"\x00\x00")
        disk.corrupt_byte("f", 1)
        assert disk.read("f") == b"\x00\xff"

    def test_corrupt_bounds(self, disk):
        disk.write("f", b"ab")
        with pytest.raises(IndexError):
            disk.corrupt_byte("f", 2)


class TestSchemesOnRealFiles:
    @pytest.mark.parametrize("scheme_name", ["BS", "cBS", "cCS", "cIS"])
    def test_index_round_trip(self, disk, scheme_name):
        index = make_index(num_rows=150, cardinality=30, base=Base((6, 5)))
        write_index(disk, "idx", index, scheme_name)
        reopened = open_scheme(disk, "idx")
        for op in ("<=", "=", "!="):
            got = evaluate(reopened, Predicate(op, 11))
            assert got == index.naive_eval(op, 11)
            reopened.reset_cache()

    def test_persistence_across_disk_objects(self, tmp_path):
        index = make_index(num_rows=100, cardinality=20, base=Base((5, 4)))
        first = FileSystemDisk(str(tmp_path / "db"))
        write_index(first, "idx", index, "cBS")
        # A brand-new handle over the same directory sees the index.
        second = FileSystemDisk(str(tmp_path / "db"))
        reopened = open_scheme(second, "idx")
        got = evaluate(reopened, Predicate("<=", 7))
        assert got == index.naive_eval("<=", 7)

    def test_corruption_detected_through_schemes(self, disk):
        index = make_index(num_rows=100, cardinality=20, base=Base((5, 4)))
        scheme = write_index(disk, "idx", index, "BS")
        disk.corrupt_byte("idx/c1_s0", 0)
        with pytest.raises(CorruptFileError):
            evaluate(scheme, Predicate("<=", 0))
