"""Tests for the real-filesystem disk backend."""

from __future__ import annotations

import os

import pytest

from repro.core.decomposition import Base
from repro.core.evaluation import Predicate, evaluate
from repro.errors import (
    CorruptFileError,
    FileMissingError,
    InjectedFaultError,
    StorageError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.storage.fsdisk import FileSystemDisk
from repro.storage.schemes import open_scheme, write_index

from conftest import make_index


@pytest.fixture
def disk(tmp_path) -> FileSystemDisk:
    return FileSystemDisk(str(tmp_path / "store"))


class TestBasicOperations:
    def test_write_read_round_trip(self, disk):
        disk.write("a/b", b"hello")
        assert disk.read("a/b") == b"hello"
        assert disk.exists("a/b")

    def test_accounting(self, disk):
        disk.write("f", b"12345")
        disk.read("f")
        assert disk.stats.bytes_written == 5
        assert disk.stats.bytes_read == 5

    def test_missing_file(self, disk):
        with pytest.raises(FileMissingError):
            disk.read("nope")
        with pytest.raises(FileMissingError):
            disk.delete("nope")
        with pytest.raises(FileMissingError):
            disk.size_of("nope")

    def test_list_files(self, disk):
        disk.write("x/a", b"")
        disk.write("x/b", b"")
        disk.write("y/c", b"")
        assert disk.list_files("x/") == ["x/a", "x/b"]
        assert len(disk.list_files()) == 3

    def test_delete(self, disk):
        disk.write("f", b"1")
        disk.delete("f")
        assert not disk.exists("f")

    def test_total_bytes(self, disk):
        disk.write("x/a", b"123")
        disk.write("x/b", b"4567")
        assert disk.total_bytes("x/") == 7

    def test_overwrite(self, disk):
        disk.write("f", b"old")
        disk.write("f", b"new!")
        assert disk.read("f") == b"new!"


class TestPathSafety:
    @pytest.mark.parametrize(
        "path",
        [
            "../escape",
            "a/../../b",
            "a//b",
            "",
            ".",
            "a/./b",
            "a/..",
            "/absolute",
            "a/" + os.sep + "b" if os.sep != "/" else "a/../b",
        ],
    )
    def test_traversal_rejected(self, disk, path):
        with pytest.raises(StorageError):
            disk.write(path, b"x")
        with pytest.raises(StorageError):
            disk.read(path)

    def test_resolved_paths_stay_under_root(self, disk):
        disk.write("deep/nested/file", b"x")
        target = disk._resolve("deep/nested/file")
        assert os.path.commonpath([disk.root, target]) == disk.root


class TestChecksumFrames:
    """With checksums on (the default), torn and corrupt files are typed
    errors at read time instead of garbage handed to a codec."""

    def test_truncate_detected(self, disk):
        disk.write("f", b"123456")
        disk.truncate("f", 2)
        with pytest.raises(CorruptFileError):
            disk.read("f")

    def test_torn_payload_detected(self, disk):
        disk.write("f", b"123456")
        # Cut inside the payload but past the 16-byte header: the header
        # survives and promises more bytes than remain.
        disk.truncate("f", 18)
        with pytest.raises(CorruptFileError, match="torn"):
            disk.read("f")

    def test_corrupt_byte_detected(self, disk):
        disk.write("f", b"\x00\x00")
        disk.corrupt_byte("f", 17)  # a payload byte, past the header
        with pytest.raises(CorruptFileError, match="checksum mismatch"):
            disk.read("f")

    def test_corrupt_header_detected(self, disk):
        disk.write("f", b"payload")
        disk.corrupt_byte("f", 0)
        with pytest.raises(CorruptFileError, match="header"):
            disk.read("f")

    def test_size_of_reports_payload_bytes(self, disk):
        disk.write("f", b"12345")
        assert disk.size_of("f") == 5
        assert disk.total_bytes() == 5

    def test_verify(self, disk):
        disk.write("f", b"12345")
        assert disk.verify("f")
        disk.corrupt_byte("f", 20)
        assert not disk.verify("f")

    def test_quarantine_moves_file_aside(self, disk):
        disk.write("idx/c1_s0", b"bits")
        disk.corrupt_byte("idx/c1_s0", 16)
        shelter = disk.quarantine("idx/c1_s0")
        assert not disk.exists("idx/c1_s0")
        assert os.path.isfile(shelter)
        assert ".quarantine" in shelter
        # The path is free for a rebuild.
        disk.write("idx/c1_s0", b"bits")
        assert disk.read("idx/c1_s0") == b"bits"

    def test_quarantine_dedups_names(self, disk):
        for _ in range(2):
            disk.write("f", b"x")
            first = disk.quarantine("f")
        assert os.path.isfile(first)
        shelter_dir = os.path.dirname(first)
        assert len(os.listdir(shelter_dir)) == 2

    def test_scrub_finds_and_quarantines(self, disk):
        disk.write("idx/good", b"fine")
        disk.write("idx/bad", b"broken")
        disk.corrupt_byte("idx/bad", 18)
        corrupt = disk.scrub("idx/")
        assert corrupt == ["idx/bad"]
        assert not disk.exists("idx/bad")
        assert disk.read("idx/good") == b"fine"
        # Quarantined files are invisible to listing and later scrubs.
        assert disk.list_files() == ["idx/good"]
        assert disk.scrub("idx/") == []


class TestChecksumsOff:
    """``checksums=False`` keeps the legacy raw-store behavior."""

    @pytest.fixture
    def raw(self, tmp_path) -> FileSystemDisk:
        return FileSystemDisk(str(tmp_path / "raw"), checksums=False)

    def test_truncate_passes_through(self, raw):
        raw.write("f", b"123456")
        raw.truncate("f", 2)
        assert raw.read("f") == b"12"

    def test_corrupt_byte_passes_through(self, raw):
        raw.write("f", b"\x00\x00")
        raw.corrupt_byte("f", 1)
        assert raw.read("f") == b"\x00\xff"

    def test_no_frame_overhead(self, raw, tmp_path):
        raw.write("f", b"12345")
        assert os.path.getsize(tmp_path / "raw" / "f") == 5


class TestFailureInjection:
    def test_corrupt_bounds(self, disk):
        disk.write("f", b"ab")
        with pytest.raises(IndexError):
            disk.corrupt_byte("f", 100)

    def test_atomic_write_no_temp_residue(self, disk):
        disk.write("a/b", b"data")
        assert disk.list_files() == ["a/b"]

    def test_injected_write_crash_keeps_old_contents(self, tmp_path):
        plan = FaultPlan([FaultSpec("disk.write", "error", nth=2)])
        disk = FileSystemDisk(str(tmp_path / "s"), fault_plan=plan)
        disk.write("f", b"old")
        with pytest.raises(InjectedFaultError):
            disk.write("f", b"new")
        # The replace never happened and the temp file is cleaned up.
        assert disk.read("f") == b"old"
        assert disk.list_files() == ["f"]

    def test_injected_read_error(self, tmp_path):
        plan = FaultPlan([FaultSpec("disk.read", "error", nth=1)])
        disk = FileSystemDisk(str(tmp_path / "s"), fault_plan=plan)
        disk.write("f", b"data")
        with pytest.raises(InjectedFaultError):
            disk.read("f")
        assert disk.read("f") == b"data"  # the fault was one-shot

    @pytest.mark.parametrize("kind", ["torn", "corrupt"])
    def test_injected_damage_caught_by_checksum(self, tmp_path, kind):
        plan = FaultPlan([FaultSpec("disk.read", kind, nth=1)], seed=3)
        disk = FileSystemDisk(str(tmp_path / "s"), fault_plan=plan)
        disk.write("f", b"payload-bytes")
        with pytest.raises(CorruptFileError):
            disk.read("f")
        assert disk.read("f") == b"payload-bytes"


class TestSchemesOnRealFiles:
    @pytest.mark.parametrize("scheme_name", ["BS", "cBS", "cCS", "cIS"])
    def test_index_round_trip(self, disk, scheme_name):
        index = make_index(num_rows=150, cardinality=30, base=Base((6, 5)))
        write_index(disk, "idx", index, scheme_name)
        reopened = open_scheme(disk, "idx")
        for op in ("<=", "=", "!="):
            got = evaluate(reopened, Predicate(op, 11))
            assert got == index.naive_eval(op, 11)
            reopened.reset_cache()

    def test_persistence_across_disk_objects(self, tmp_path):
        index = make_index(num_rows=100, cardinality=20, base=Base((5, 4)))
        first = FileSystemDisk(str(tmp_path / "db"))
        write_index(first, "idx", index, "cBS")
        # A brand-new handle over the same directory sees the index.
        second = FileSystemDisk(str(tmp_path / "db"))
        reopened = open_scheme(second, "idx")
        got = evaluate(reopened, Predicate("<=", 7))
        assert got == index.naive_eval("<=", 7)

    def test_corruption_detected_through_schemes(self, disk):
        index = make_index(num_rows=100, cardinality=20, base=Base((5, 4)))
        scheme = write_index(disk, "idx", index, "BS")
        disk.corrupt_byte("idx/c1_s0", 0)
        with pytest.raises(CorruptFileError):
            evaluate(scheme, Predicate("<=", 0))
