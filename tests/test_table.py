"""Tests for the user-facing Table facade."""

from __future__ import annotations

import doctest

import numpy as np
import pytest

import repro.table as table_module
from repro.core.decomposition import Base
from repro.core.optimize import knee_base
from repro.errors import OptimizationError
from repro.stats import ExecutionStats
from repro.storage.disk import SimulatedDisk
from repro.storage.fsdisk import FileSystemDisk
from repro.table import Table, TableError


@pytest.fixture
def table(rng) -> Table:
    return Table(
        "sales",
        {
            "region": rng.integers(0, 25, 2000),
            "channel": rng.integers(0, 4, 2000),
            "amount": rng.integers(1, 1000, 2000),
        },
    )


def _truth(table: Table, mask: np.ndarray) -> np.ndarray:
    return np.nonzero(mask)[0]


class TestIndexManagement:
    def test_default_index_is_the_knee(self, table):
        index = table.create_index("region")
        assert index.base == knee_base(25)
        assert "region" in table.catalog.bitmap_indexes

    def test_explicit_base(self, table):
        index = table.create_index("region", base=Base((5, 5)))
        assert index.base == Base((5, 5))

    def test_objective_forwarded(self, table):
        index = table.create_index("region", objective="space")
        assert index.base == Base.binary(25)

    def test_rid_index(self, table):
        index = table.create_rid_index("region")
        assert index.cardinality == 25

    def test_analyze_registers_histogram(self, table):
        histogram = table.analyze("amount", buckets=8)
        assert table.catalog.histograms["amount"] is histogram

    def test_design_indexes_under_budget(self, table):
        bases = table.design_indexes(
            40, weights={"region": 2.0}, attributes=["region", "channel"]
        )
        assert set(bases) == {"region", "channel"}
        total = sum(
            table.catalog.bitmap_indexes[a].num_bitmaps for a in bases
        )
        assert total <= 40

    def test_design_indexes_infeasible_budget(self, table):
        with pytest.raises(OptimizationError):
            table.design_indexes(2, attributes=["region", "channel"])

    def test_repr(self, table):
        table.create_index("region")
        assert "region" in repr(table)


class TestSelect:
    def test_conjunction_goes_through_optimizer(self, table):
        table.create_index("region")
        table.create_index("channel")
        rids = table.select("region <= 10 and channel = 2")
        values = table.relation
        mask = (values.column("region").values <= 10) & (
            values.column("channel").values == 2
        )
        assert np.array_equal(rids, _truth(table, mask))
        assert "P" in table.explain("region <= 10 and channel = 2")

    def test_general_expression_uses_bitmaps(self, table):
        table.create_index("region")
        table.create_index("channel")
        text = "region in (1, 5, 9) or not channel <= 2"
        rids = table.select(text)
        r = table.relation.column("region").values
        c = table.relation.column("channel").values
        mask = np.isin(r, [1, 5, 9]) | ~(c <= 2)
        assert np.array_equal(rids, _truth(table, mask))
        assert table.explain(text) == "bitmap expression evaluation"

    def test_missing_index_falls_back_to_scan(self, table):
        # 'amount' has no index; a disjunction referencing it scans.
        text = "amount <= 100 or amount >= 900"
        rids = table.select(text)
        a = table.relation.column("amount").values
        assert np.array_equal(rids, _truth(table, (a <= 100) | (a >= 900)))
        assert "full scan" in table.explain(text)

    def test_stats_merged(self, table):
        table.create_index("region")
        stats = ExecutionStats()
        table.select("region <= 10", stats=stats)
        assert stats.scans + stats.bytes_read > 0

    def test_select_without_any_index_still_correct(self, table):
        rids = table.select("region = 3")
        mask = table.relation.column("region").values == 3
        assert np.array_equal(rids, _truth(table, mask))


class TestAggregate:
    def test_full_column(self, table):
        amounts = table.relation.column("amount").values
        assert table.aggregate("amount", "sum") == int(amounts.sum())
        assert table.aggregate("amount", "count") == len(amounts)
        assert table.aggregate("amount", "min") == int(amounts.min())
        assert table.aggregate("amount", "max") == int(amounts.max())
        assert table.aggregate("amount", "avg") == pytest.approx(
            float(amounts.mean())
        )

    def test_with_where(self, table):
        table.create_index("region")
        amounts = table.relation.column("amount").values
        mask = table.relation.column("region").values <= 10
        assert table.aggregate("amount", "sum", where="region <= 10") == int(
            amounts[mask].sum()
        )

    def test_aggregator_cached(self, table):
        table.aggregate("amount", "sum")
        first = table._aggregators["amount"]
        table.aggregate("amount", "max")
        assert table._aggregators["amount"] is first

    def test_unknown_function(self, table):
        with pytest.raises(TableError):
            table.aggregate("amount", "median")

    def test_non_integer_measure_rejected(self, rng):
        table = Table("t", {"x": rng.random(10)})
        with pytest.raises(TableError):
            table.aggregate("x", "sum")


class TestPersistence:
    @pytest.mark.parametrize("disk_kind", ["simulated", "filesystem"])
    def test_save_load_round_trip(self, table, tmp_path, disk_kind):
        table.create_index("region")
        table.create_index("channel", base=Base((4,)))
        disk = (
            SimulatedDisk()
            if disk_kind == "simulated"
            else FileSystemDisk(str(tmp_path / "db"))
        )
        table.save(disk, "sales")
        loaded = Table.load(disk, "sales")
        assert loaded.num_rows == table.num_rows
        assert loaded.column_names() == table.column_names()
        assert set(loaded.catalog.bitmap_indexes) == {"region", "channel"}
        assert loaded.catalog.bitmap_indexes["channel"].base == Base((4,))
        original = table.select("region <= 10 and channel = 2")
        restored = loaded.select("region <= 10 and channel = 2")
        assert np.array_equal(original, restored)

    def test_load_bad_manifest(self, table):
        disk = SimulatedDisk()
        table.save(disk, "t")
        disk.write("t/table", b"{broken")
        with pytest.raises(TableError):
            Table.load(disk, "t")


def test_module_doctest():
    results = doctest.testmod(table_module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
