"""Tests for the physical-design advisor."""

from __future__ import annotations

import pytest

from repro.core import costmodel
from repro.core.advisor import IndexDesign, recommend
from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.optimize import knee_base
from repro.errors import OptimizationError


class TestObjectives:
    def test_default_is_knee(self):
        design = recommend(1000)
        assert design.base == knee_base(1000)
        assert design.encoding is EncodingScheme.RANGE
        assert "knee" in design.rationale.lower()

    def test_space_objective(self):
        design = recommend(1000, objective="space")
        assert design.base == Base.binary(1000)
        assert design.space_bitmaps == 10

    def test_time_objective_unconstrained(self):
        design = recommend(1000, objective="time")
        assert design.base == Base((1000,))

    def test_time_objective_with_budget_exact(self):
        design = recommend(100, space_budget=20, objective="time", exact=True)
        assert design.space_bitmaps <= 20
        assert "exact" in design.rationale

    def test_time_objective_with_budget_heuristic(self):
        design = recommend(1000, space_budget=40, objective="time")
        assert design.space_bitmaps <= 40
        assert "near-optimal" in design.rationale

    def test_unknown_objective(self):
        with pytest.raises(OptimizationError):
            recommend(100, objective="balance")


class TestBudgets:
    def test_knee_falls_back_under_tight_budget(self):
        knee_space = costmodel.space_range(knee_base(1000))
        design = recommend(1000, space_budget=knee_space - 10)
        assert design.space_bitmaps <= knee_space - 10
        assert "fell back" in design.rationale

    def test_infeasible_budget_raises(self):
        with pytest.raises(OptimizationError):
            recommend(1000, space_budget=5, objective="time")

    def test_space_objective_over_budget_raises(self):
        # The base-2 index needs 10 bitmaps for C=1000.
        with pytest.raises(OptimizationError):
            recommend(1000, space_budget=9, objective="space")


class TestBuffering:
    def test_buffered_scans_lower(self):
        plain = recommend(1000)
        buffered = recommend(1000, buffer_bitmaps=8)
        assert buffered.expected_scans < plain.expected_scans
        assert "Theorem 10.1" in buffered.rationale
        assert buffered.buffered_bitmaps == 8

    def test_prediction_matches_costmodel(self):
        design = recommend(1000)
        assert design.expected_scans == pytest.approx(
            costmodel.time_range(design.base)
        )


class TestDesignRendering:
    def test_str_contains_key_facts(self):
        design = recommend(100)
        text = str(design)
        assert "bitmaps" in text
        assert "scans" in text
        assert isinstance(design, IndexDesign)


class TestCli:
    def test_basic_invocation(self, capsys):
        from repro.core.advisor import main

        assert main(["1000"]) == 0
        out = capsys.readouterr().out
        assert "28, 36" in out  # the C=1000 knee

    def test_with_budget_and_buffer(self, capsys):
        from repro.core.advisor import main

        assert main(["1000", "--budget", "40", "--objective", "time",
                     "--buffer", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 10.1" in out

    def test_exact_flag(self, capsys):
        from repro.core.advisor import main

        assert main(["50", "--budget", "20", "--objective", "time",
                     "--exact"]) == 0
        assert "exact" in capsys.readouterr().out

    def test_infeasible_budget_exit_code(self, capsys):
        from repro.core.advisor import main

        assert main(["1000", "--budget", "3", "--objective", "time"]) == 2
        assert "error" in capsys.readouterr().out
