"""Tests for the boolean expression layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import Base
from repro.errors import InvalidPredicateError
from repro.query.executor import VerificationError, bitmap_index_for
from repro.query.expression import (
    And,
    Between,
    Comparison,
    In,
    Not,
    Or,
    parse_expression,
    select,
)
from repro.query.options import QueryOptions
from repro.relation.relation import Relation
from repro.stats import ExecutionStats


@pytest.fixture
def relation(rng) -> Relation:
    return Relation.from_dict(
        "t",
        {
            "a": rng.integers(0, 30, 1000),
            "b": rng.integers(0, 8, 1000),
        },
    )


@pytest.fixture
def indexes(relation):
    return {
        "a": bitmap_index_for(relation, "a", base=Base((6, 5))),
        "b": bitmap_index_for(relation, "b"),
    }


class TestParser:
    def test_simple_comparison(self):
        expr = parse_expression("a <= 5")
        assert expr == Comparison("a", "<=", 5)

    def test_precedence_and_binds_tighter_than_or(self):
        expr = parse_expression("a = 1 or a = 2 and b = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_parentheses_override(self):
        expr = parse_expression("(a = 1 or a = 2) and b = 3")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Or)

    def test_not(self):
        expr = parse_expression("not a = 1")
        assert expr == Not(Comparison("a", "=", 1))

    def test_double_not(self):
        expr = parse_expression("not not a = 1")
        assert expr == Not(Not(Comparison("a", "=", 1)))

    def test_in_list(self):
        expr = parse_expression("a in (1, 2, 3)")
        assert expr == In("a", (1, 2, 3))

    def test_between(self):
        expr = parse_expression("a between 3 and 9")
        assert expr == Between("a", 3, 9)

    def test_between_inside_conjunction(self):
        expr = parse_expression("a between 3 and 9 and b = 1")
        assert isinstance(expr, And)
        assert expr.left == Between("a", 3, 9)

    def test_float_and_string_values(self):
        assert parse_expression("x >= 2.5") == Comparison("x", ">=", 2.5)
        assert parse_expression("name = alice") == Comparison(
            "name", "=", "alice"
        )

    def test_case_insensitive_keywords(self):
        expr = parse_expression("a = 1 AND NOT b = 2")
        assert isinstance(expr, And)
        assert isinstance(expr.right, Not)

    @pytest.mark.parametrize(
        "bad",
        ["", "a <", "a = 1 or", "(a = 1", "a = 1)", "a in ()", "a in (1",
         "a between 1", "and a = 1", "a ~ 1", "a = 1 b = 2"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidPredicateError):
            parse_expression(bad)

    def test_str_round_trips_semantics(self, relation, indexes):
        expr = parse_expression("a <= 5 and (b = 1 or b = 2)")
        again = parse_expression(str(expr))
        assert np.array_equal(again.mask(relation), expr.mask(relation))


class TestParserCorners:
    """Error paths and precedence corners of the recursive-descent parser."""

    @pytest.mark.parametrize(
        "bad",
        [
            "((a = 1)",            # unbalanced open
            "(a = 1))",            # unbalanced close (trailing input)
            "(a = 1 or (b = 2)",   # nested, one close short
            "a = 1 and (b = 2 or", # dangling connective inside parens
            "()",                  # empty group
        ],
    )
    def test_unbalanced_parens_rejected(self, bad):
        with pytest.raises(InvalidPredicateError):
            parse_expression(bad)

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("not a = 1 and b = 2")
        # (not (a=1)) and (b=2), NOT not(a=1 and b=2)
        assert isinstance(expr, And)
        assert isinstance(expr.left, Not)
        assert isinstance(expr.left.inner, Comparison)
        assert isinstance(expr.right, Comparison)

    def test_not_of_group_spans_whole_disjunction(self):
        expr = parse_expression("not (a = 1 or b = 2)")
        assert isinstance(expr, Not)
        assert isinstance(expr.inner, Or)

    def test_not_chain_parses_inward(self):
        expr = parse_expression("not not not a = 1")
        assert isinstance(expr, Not)
        assert isinstance(expr.inner, Not)
        assert isinstance(expr.inner.inner, Not)
        assert isinstance(expr.inner.inner.inner, Comparison)

    def test_between_binds_its_own_and(self):
        # The "and" inside BETWEEN must not be parsed as a conjunction.
        expr = parse_expression("a between 1 and 5 and b = 2")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Between)
        assert expr.left.low == 1 and expr.left.high == 5
        assert isinstance(expr.right, Comparison)

    def test_between_inside_not_and_or(self, relation, indexes):
        expr = parse_expression("not a between 5 and 25 or b = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.left, Not)
        assert isinstance(expr.left.inner, Between)
        a = relation.column("a").values
        b = relation.column("b").values
        truth = ~((a >= 5) & (a <= 25)) | (b == 3)
        assert np.array_equal(expr.mask(relation), truth)

    def test_in_nested_in_parenthesized_disjunction(self, relation, indexes):
        expr = parse_expression("(b in (1, 2) or b in (5)) and a < 10")
        assert isinstance(expr, And)
        rids = select(
            relation, expr, indexes, options=QueryOptions(verify=False)
        )
        truth = np.nonzero(expr.mask(relation))[0]
        assert np.array_equal(rids, truth)

    @pytest.mark.parametrize(
        "bad",
        [
            "a between 1 and",       # missing upper bound
            "a between and 5",       # missing lower bound
            "a between 1 or 5",      # wrong connective
            "a in 1, 2",             # IN without parens
            "a in (1 2)",            # missing comma
            "a in (1,,2)",           # double comma
            "not",                   # bare NOT
            "not and a = 1",         # NOT of a connective
        ],
    )
    def test_between_in_malformed_rejected(self, bad):
        with pytest.raises(InvalidPredicateError):
            parse_expression(bad)

    def test_unknown_attribute_surfaces_on_evaluation(self, relation, indexes):
        # Parsing is catalog-free; the unknown name fails at evaluation,
        # naming the relation's real columns.
        expr = parse_expression("nonexistent = 1")
        with pytest.raises(KeyError, match="has no column 'nonexistent'"):
            expr.mask(relation)
        with pytest.raises(KeyError, match="columns: a, b"):
            expr.bitmap(relation, indexes)

    def test_unknown_attribute_in_one_branch(self, relation, indexes):
        expr = parse_expression("a <= 5 and typo_column = 1")
        with pytest.raises(KeyError, match="typo_column"):
            select(relation, expr, indexes, options=QueryOptions(verify=False))


class TestEvaluation:
    @pytest.mark.parametrize(
        "text",
        [
            "a <= 12",
            "a <= 12 and b = 3",
            "a = 1 or a = 7 or a = 29",
            "not a <= 12",
            "a in (0, 5, 29)",
            "a between 10 and 20",
            "(a <= 5 or a >= 25) and not b in (0, 1)",
            "a between 10 and 20 and (b = 2 or not b <= 5)",
            "a > 29",
            "a != 15 and b != 0",
        ],
    )
    def test_matches_ground_truth(self, relation, indexes, text):
        rids = select(relation, text, indexes)
        expr = parse_expression(text)
        truth = np.nonzero(expr.mask(relation))[0]
        assert np.array_equal(rids, truth)

    def test_stats_counted(self, relation, indexes):
        stats = ExecutionStats()
        select(relation, "a <= 12 and b = 3", indexes, stats=stats)
        assert stats.scans >= 2
        assert stats.ands >= 1

    def test_python_combinators(self, relation, indexes):
        expr = (Comparison("a", "<=", 12) & Comparison("b", "=", 3)) | ~Comparison(
            "a", ">", 5
        )
        rids = select(relation, expr, indexes)
        truth = np.nonzero(expr.mask(relation))[0]
        assert np.array_equal(rids, truth)

    def test_attributes_collected(self):
        expr = parse_expression("a <= 1 and (b = 2 or c = 3)")
        assert expr.attributes() == {"a", "b", "c"}

    def test_missing_index_rejected(self, relation, indexes):
        with pytest.raises(InvalidPredicateError):
            select(relation, "a = 1", {})

    def test_in_empty_rejected(self):
        with pytest.raises(InvalidPredicateError):
            In("a", ())

    def test_verification_catches_wrong_index(self, relation, indexes):
        wrong = {"a": indexes["b"], "b": indexes["b"]}
        with pytest.raises((VerificationError, Exception)):
            select(relation, "a <= 12", wrong)

    def test_values_absent_from_domain(self, relation, indexes):
        rids = select(relation, "a between 28 and 99", indexes)
        truth = np.nonzero(relation.column("a").values >= 28)[0]
        assert np.array_equal(rids, truth)


_leaf = st.sampled_from([
    ("a", op, v)
    for op in ("<", "<=", "=", "!=", ">=", ">")
    for v in (-1, 0, 7, 15, 29, 30)
] + [
    ("b", op, v)
    for op in ("<=", "=", ">")
    for v in (0, 3, 7)
])


def _expr_strategy():
    leaves = _leaf.map(lambda t: Comparison(*t))
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            children.map(Not),
        ),
        max_leaves=8,
    )


@settings(max_examples=60, deadline=None)
@given(expr=_expr_strategy())
def test_random_expressions_match_ground_truth(expr):
    rng = np.random.default_rng(42)
    relation = Relation.from_dict(
        "t", {"a": rng.integers(0, 30, 300), "b": rng.integers(0, 8, 300)}
    )
    indexes = {
        "a": bitmap_index_for(relation, "a", base=Base((6, 5))),
        "b": bitmap_index_for(relation, "b"),
    }
    rids = select(relation, expr, indexes, options=QueryOptions(verify=False))
    truth = np.nonzero(expr.mask(relation))[0]
    assert np.array_equal(rids, truth)
