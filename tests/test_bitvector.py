"""Unit and property tests for the packed bitvector substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmaps.bitvector import BitVector
from repro.errors import LengthMismatchError


class TestConstruction:
    def test_zeros_has_no_set_bits(self):
        vec = BitVector.zeros(100)
        assert len(vec) == 100
        assert vec.count() == 0
        assert not vec.any()

    def test_ones_has_all_bits_set(self):
        vec = BitVector.ones(100)
        assert vec.count() == 100
        assert vec.all()

    def test_ones_masks_tail_bits(self):
        # 70 bits span two words; the upper 58 bits of word 2 must be zero.
        vec = BitVector.ones(70)
        assert vec.count() == 70

    def test_zero_length_vector(self):
        vec = BitVector.zeros(0)
        assert len(vec) == 0
        assert vec.count() == 0
        assert vec.to_bytes() == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_from_indices(self):
        vec = BitVector.from_indices(10, [0, 3, 9])
        assert vec.count() == 3
        assert vec.get(0) and vec.get(3) and vec.get(9)
        assert not vec.get(1)

    def test_from_indices_empty(self):
        vec = BitVector.from_indices(10, [])
        assert vec.count() == 0

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.from_indices(10, [10])
        with pytest.raises(IndexError):
            BitVector.from_indices(10, [-1])

    def test_from_bools_round_trip(self, rng):
        bools = rng.random(137) < 0.5
        vec = BitVector.from_bools(bools)
        assert np.array_equal(vec.to_bools(), bools)

    def test_words_constructor_validates_dtype(self):
        with pytest.raises(ValueError):
            BitVector(64, np.zeros(1, dtype=np.int64))

    def test_words_constructor_validates_length(self):
        with pytest.raises(ValueError):
            BitVector(65, np.zeros(1, dtype=np.uint64))

    def test_words_constructor_masks_tail(self):
        words = np.full(1, np.uint64(0xFFFFFFFFFFFFFFFF))
        vec = BitVector(3, words)
        assert vec.count() == 3


class TestAccessors:
    def test_get_set_round_trip(self):
        vec = BitVector.zeros(130)
        vec.set(0)
        vec.set(64)
        vec.set(129)
        assert vec.get(0) and vec.get(64) and vec.get(129)
        vec.set(64, False)
        assert not vec.get(64)
        assert vec.count() == 2

    def test_getitem(self):
        vec = BitVector.from_indices(5, [2])
        assert vec[2]
        assert not vec[0]

    def test_index_bounds_checked(self):
        vec = BitVector.zeros(8)
        with pytest.raises(IndexError):
            vec.get(8)
        with pytest.raises(IndexError):
            vec.set(-1)

    def test_indices_sorted(self, rng):
        bools = rng.random(200) < 0.3
        vec = BitVector.from_bools(bools)
        expected = np.nonzero(bools)[0]
        assert np.array_equal(vec.indices(), expected)

    def test_iter_indices(self):
        vec = BitVector.from_indices(10, [7, 1, 4])
        assert list(vec.iter_indices()) == [1, 4, 7]

    def test_nbytes(self):
        assert BitVector.zeros(1).nbytes == 1
        assert BitVector.zeros(8).nbytes == 1
        assert BitVector.zeros(9).nbytes == 2

    def test_repr_small_shows_bits(self):
        vec = BitVector.from_indices(4, [0])
        assert "1000" in repr(vec)

    def test_repr_large_shows_count(self):
        vec = BitVector.ones(1000)
        assert "count=1000" in repr(vec)

    def test_all_on_partial(self):
        vec = BitVector.from_indices(3, [0, 1])
        assert not vec.all()
        vec.set(2)
        assert vec.all()


class TestLogicalOps:
    def test_and(self):
        a = BitVector.from_indices(8, [0, 1, 2])
        b = BitVector.from_indices(8, [1, 2, 3])
        assert (a & b).indices().tolist() == [1, 2]

    def test_or(self):
        a = BitVector.from_indices(8, [0, 1])
        b = BitVector.from_indices(8, [3])
        assert (a | b).indices().tolist() == [0, 1, 3]

    def test_xor(self):
        a = BitVector.from_indices(8, [0, 1])
        b = BitVector.from_indices(8, [1, 2])
        assert (a ^ b).indices().tolist() == [0, 2]

    def test_not_respects_length(self):
        a = BitVector.from_indices(70, [0])
        inverted = ~a
        assert inverted.count() == 69
        assert not inverted.get(0)

    def test_andnot(self):
        a = BitVector.from_indices(8, [0, 1, 2])
        b = BitVector.from_indices(8, [1])
        assert a.andnot(b).indices().tolist() == [0, 2]

    def test_double_negation_is_identity(self, rng):
        vec = BitVector.from_bools(rng.random(99) < 0.5)
        assert ~~vec == vec

    def test_ops_do_not_mutate_operands(self):
        a = BitVector.from_indices(8, [0])
        b = BitVector.from_indices(8, [1])
        _ = a | b
        assert a.indices().tolist() == [0]
        assert b.indices().tolist() == [1]

    def test_length_mismatch_raises(self):
        with pytest.raises(LengthMismatchError):
            BitVector.zeros(8) & BitVector.zeros(9)

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            BitVector.zeros(8) & object()  # type: ignore[operator]


class TestSerialization:
    def test_bytes_round_trip(self, rng):
        bools = rng.random(1001) < 0.4
        vec = BitVector.from_bools(bools)
        restored = BitVector.from_bytes(vec.to_bytes(), 1001)
        assert restored == vec

    def test_from_bytes_length_checked(self):
        with pytest.raises(ValueError):
            BitVector.from_bytes(b"\x00", 9)

    def test_to_bytes_length(self):
        assert len(BitVector.zeros(13).to_bytes()) == 2

    def test_copy_is_independent(self):
        vec = BitVector.zeros(8)
        dup = vec.copy()
        dup.set(0)
        assert not vec.get(0)


class TestEquality:
    def test_equal_vectors(self):
        assert BitVector.from_indices(9, [1]) == BitVector.from_indices(9, [1])

    def test_different_content(self):
        assert BitVector.from_indices(9, [1]) != BitVector.from_indices(9, [2])

    def test_different_length(self):
        assert BitVector.zeros(8) != BitVector.zeros(9)

    def test_not_comparable_to_other_types(self):
        assert BitVector.zeros(8) != "nope"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitVector.zeros(8))


@settings(max_examples=60, deadline=None)
@given(
    nbits=st.integers(min_value=1, max_value=300),
    seed_a=st.integers(min_value=0, max_value=2**31),
    seed_b=st.integers(min_value=0, max_value=2**31),
)
def test_logical_ops_match_numpy(nbits, seed_a, seed_b):
    """Property: every logical op agrees with numpy boolean arithmetic."""
    a_bools = np.random.default_rng(seed_a).random(nbits) < 0.5
    b_bools = np.random.default_rng(seed_b).random(nbits) < 0.5
    a = BitVector.from_bools(a_bools)
    b = BitVector.from_bools(b_bools)
    assert np.array_equal((a & b).to_bools(), a_bools & b_bools)
    assert np.array_equal((a | b).to_bools(), a_bools | b_bools)
    assert np.array_equal((a ^ b).to_bools(), a_bools ^ b_bools)
    assert np.array_equal((~a).to_bools(), ~a_bools)
    assert a.count() == int(a_bools.sum())


@settings(max_examples=40, deadline=None)
@given(
    nbits=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_serialization_round_trip_property(nbits, seed):
    bools = np.random.default_rng(seed).random(nbits) < 0.5
    vec = BitVector.from_bools(bools)
    assert BitVector.from_bytes(vec.to_bytes(), nbits) == vec
