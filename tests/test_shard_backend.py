"""Differential tests for the sharded, process-parallel execution backend.

The contract under test: for every codec (dense/WAH/Roaring) and every
shard count — including one that does not divide the row count — the
process backend returns **bit-identical RIDs**, identical popcounts, and
identical metrics-visible scan and operation counts to the inline
backend, before and after append/update/delete maintenance.

Scan-count parity is exact against an *uncached* inline engine: the
shard workers charge one scan per fetch (the ``BitmapIndex.fetch``
rule), while a warm shared cache on the inline path converts repeat
fetches into buffer hits; ``scans + buffer_hits`` (effective fetches) is
the invariant that holds under any cache configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Base
from repro.core.encoding import EncodingScheme
from repro.core.evaluation import Predicate, evaluate
from repro.core.index import BitmapIndex
from repro.engine import QueryEngine, QueryOptions, ShardedBitmapIndex, shard_bounds
from repro.engine.sharding import merge_shard_rids, translate_expression
from repro.errors import EngineConfigError
from repro.query.expression import parse_expression
from repro.relation.relation import Relation
from repro.stats import ExecutionStats

CODECS = ("dense", "wah", "roaring")
SHARD_COUNTS = (1, 2, 7)  # 7 does not divide the test row counts
NUM_ROWS = 5_003  # prime: never divisible by a shard count > 1


# ----------------------------------------------------------------------
# shard_bounds
# ----------------------------------------------------------------------


class TestShardBounds:
    def test_partitions_are_contiguous_and_cover(self):
        bounds = shard_bounds(100, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_sizes_differ_by_at_most_one(self):
        for rows, shards in ((100, 7), (5, 3), (64, 64), (1000, 13)):
            sizes = [stop - start for start, stop in shard_bounds(rows, shards)]
            assert sum(sizes) == rows
            assert max(sizes) - min(sizes) <= 1

    def test_clamps_to_row_count(self):
        assert len(shard_bounds(3, 10)) == 3
        assert shard_bounds(3, 10) == ((0, 1), (1, 2), (2, 3))

    def test_rejects_nonpositive(self):
        with pytest.raises(EngineConfigError):
            shard_bounds(10, 0)

    def test_merge_offsets_preserve_global_order(self):
        rids = merge_shard_rids(
            [np.array([0, 2]), np.array([1]), np.array([0, 3])],
            [0, 10, 20],
        )
        assert rids.tolist() == [0, 2, 11, 20, 23]


# ----------------------------------------------------------------------
# ShardedBitmapIndex vs a single BitmapIndex (unit-level differential)
# ----------------------------------------------------------------------


def _predicate_sweep(cardinality: int):
    """Predicates hitting interior, boundary, and trivial codes."""
    for op in ("<", "<=", "=", "!=", ">=", ">"):
        for code in (0, 1, cardinality // 2, cardinality - 1):
            yield Predicate(op, code)


class TestShardedIndexDifferential:
    @pytest.fixture(scope="class")
    def values(self) -> np.ndarray:
        rng = np.random.default_rng(11)
        return rng.integers(0, 60, NUM_ROWS)

    def _assert_equivalent(self, single: BitmapIndex, sharded, codec: str):
        source = single if codec == "dense" else single.as_compressed(codec)
        for predicate in _predicate_sweep(single.cardinality):
            stats = ExecutionStats()
            bitmap = evaluate(source, predicate, stats=stats)
            result = sharded.evaluate(predicate, codec=codec)
            assert np.array_equal(bitmap.indices(), result.rids), predicate
            assert bitmap.count() == result.count, predicate
            assert result.stats.scans == stats.scans, predicate
            assert result.stats.ops == stats.ops, predicate
            # Per-shard logical counts are identical (data-independent
            # fetch patterns) — the premise of the stats merge rule.
            assert len({s.scans for s in result.shard_stats}) == 1
            assert len({s.ops for s in result.shard_stats}) == 1

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_single_index(self, values, codec, shards):
        base = Base((8, 8))
        single = BitmapIndex(values, cardinality=60, base=base)
        sharded = ShardedBitmapIndex(values, cardinality=60, shards=shards, base=base)
        assert sharded.nbits == single.nbits
        self._assert_equivalent(single, sharded, codec)

    @pytest.mark.parametrize("encoding", [EncodingScheme.EQUALITY, EncodingScheme.RANGE])
    def test_matches_across_encodings(self, values, encoding):
        single = BitmapIndex(values, cardinality=60, encoding=encoding)
        sharded = ShardedBitmapIndex(
            values, cardinality=60, shards=3, encoding=encoding
        )
        self._assert_equivalent(single, sharded, "dense")

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_after_maintenance(self, values, codec, shards):
        base = Base((8, 8))
        single = BitmapIndex(values, cardinality=60, base=base)
        sharded = ShardedBitmapIndex(values, cardinality=60, shards=shards, base=base)
        version = sharded.version

        appended = np.array([0, 17, 59, 30, 5])
        single.append(appended)
        sharded.append(appended)
        for rid, value in ((0, 59), (NUM_ROWS - 1, 0), (NUM_ROWS // 2, 7)):
            single.update(rid, value)
            sharded.update(rid, value)
        for rid in (3, NUM_ROWS - 2, NUM_ROWS + 2):
            single.delete(rid)
            sharded.delete(rid)

        assert sharded.version > version  # publications must re-export
        assert sharded.nbits == single.nbits == NUM_ROWS + 5
        # Deletes materialize B_nn; shards must track it uniformly or
        # per-shard op counts diverge.
        assert all(index.nonnull is not None for index in sharded.indexes)
        self._assert_equivalent(single, sharded, codec)

    def test_nulls_at_construction(self, values):
        rng = np.random.default_rng(5)
        nulls = rng.random(NUM_ROWS) < 0.1
        single = BitmapIndex(values, cardinality=60, nulls=nulls)
        sharded = ShardedBitmapIndex(values, cardinality=60, shards=4, nulls=nulls)
        self._assert_equivalent(single, sharded, "dense")


# ----------------------------------------------------------------------
# Engine-level differential: process backend vs inline backend
# ----------------------------------------------------------------------

QUERIES = [
    "quantity <= 25",
    "quantity > 48",
    "region = 3",
    "region != 0",
    "quantity = 0",
    "quantity >= 10 and region = 5",
    "quantity < 5 or quantity > 45",
    "quantity in (1, 9, 33)",
    "quantity between 12 and 30",
    "not (region = 2 or region = 6)",
    "quantity between 5 and 40 and (region = 1 or region = 7)",
]


@pytest.fixture(scope="module")
def relation() -> Relation:
    rng = np.random.default_rng(99)
    return Relation.from_dict(
        "orders",
        {
            "quantity": rng.integers(0, 50, NUM_ROWS),
            "region": rng.integers(0, 8, NUM_ROWS),
        },
    )


def make_engine(relation: Relation, **kwargs) -> QueryEngine:
    engine = QueryEngine(**kwargs)
    engine.register(relation, components=2)
    return engine


class TestEngineBackendDifferential:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_process_backend_matches_inline(self, relation, codec, shards):
        # capacity=0 disables the shared cache, so inline scan counts are
        # the raw per-query fetch counts the workers also charge.
        with make_engine(relation, codec=codec, cache_capacity=0) as engine:
            inline = engine.query_batch(QUERIES, options=QueryOptions(backend="inline"))
            process = engine.query_batch(
                QUERIES,
                options=QueryOptions(backend="processes", shards=shards, verify=True),
            )
            for query, a, b in zip(QUERIES, inline, process):
                assert np.array_equal(a.rids, b.rids), query
                assert a.count == b.count, query
                assert a.stats.scans == b.stats.scans, query
                assert a.stats.ops == b.stats.ops, query

    def test_effective_fetches_match_with_warm_cache(self, relation):
        # With a warm shared cache the inline path trades scans for
        # buffer hits one-for-one; scans + buffer_hits stays invariant.
        with make_engine(relation) as engine:
            inline = engine.query_batch(QUERIES, options=QueryOptions(backend="inline"))
            process = engine.query_batch(
                QUERIES, options=QueryOptions(backend="processes", shards=4)
            )
            for query, a, b in zip(QUERIES, inline, process):
                assert np.array_equal(a.rids, b.rids), query
                effective_inline = a.stats.scans + a.stats.buffer_hits
                effective_process = b.stats.scans + b.stats.buffer_hits
                assert effective_inline == effective_process, query

    def test_single_query_routes_through_processes(self, relation):
        with make_engine(relation) as engine:
            options = QueryOptions(backend="processes", shards=3, trace=True)
            result = engine.query("quantity <= 25", options=options)
            truth = relation.scan("quantity", "<=", 25)
            assert np.array_equal(result.rids, truth)
            shard_spans = result.trace.spans_of("shard")
            assert len(shard_spans) == 3
            assert sum(s.attrs["rows"] for s in shard_spans) == NUM_ROWS
            snap = engine.metrics.snapshot()
            assert snap["by_backend"]["processes"]["queries"] == 1

    def test_process_backend_matches_after_maintenance(self, relation):
        with make_engine(relation, cache_capacity=0) as engine:
            options = QueryOptions(backend="processes", shards=4)
            engine.query_batch(QUERIES, options=options)  # build + publish
            inline_index = engine._index_for("orders", "quantity")
            sharded_index = engine._sharded_index_for("orders", "quantity", 4)
            for rid, value in ((0, 49), (NUM_ROWS - 1, 0), (17, 17)):
                inline_index.update(rid, value)
                sharded_index.update(rid, value)
            inline_index.delete(5)
            sharded_index.delete(5)
            # The version bump must invalidate the shared-memory
            # publication, so the next batch re-exports and agrees.
            inline = engine.query_batch(QUERIES, options=QueryOptions(backend="inline"))
            process = engine.query_batch(QUERIES, options=options)
            for query, a, b in zip(QUERIES, inline, process):
                assert np.array_equal(a.rids, b.rids), query
                assert a.stats.scans == b.stats.scans, query
                assert a.stats.ops == b.stats.ops, query

    def test_worker_counts_do_not_change_results(self, relation):
        with make_engine(relation, cache_capacity=0) as engine:
            baseline = engine.query_batch(
                QUERIES, workers=1, options=QueryOptions(backend="processes", shards=5)
            )
            wide = engine.query_batch(
                QUERIES, workers=4, options=QueryOptions(backend="processes", shards=5)
            )
            for a, b in zip(baseline, wide):
                assert np.array_equal(a.rids, b.rids)

    def test_threads_backend_reuses_one_pool(self, relation):
        with make_engine(relation) as engine:
            batch = QUERIES * 3
            engine.query_batch(batch, workers=4)
            pool = engine._thread_pools.get(4)
            assert pool is not None
            engine.query_batch(batch, workers=4)
            assert engine._thread_pools.get(4) is pool
        assert engine._thread_pools == {}  # close() shut it down

    def test_closed_engine_rejects_pooled_batches(self, relation):
        engine = make_engine(relation)
        engine.close()
        with pytest.raises(EngineConfigError):
            engine.query_batch(QUERIES, workers=4)
        # Inline evaluation needs no pool and keeps working.
        result = engine.query("quantity <= 25", options=QueryOptions(backend="inline"))
        assert result.count > 0

    def test_invalidate_drops_publications_and_indexes(self, relation):
        with make_engine(relation) as engine:
            engine.query_batch(QUERIES, options=QueryOptions(backend="processes", shards=2))
            assert engine._exports
            sharded_key = ("orders", "quantity", "shards", 2)
            assert sharded_key in engine.registry
            engine.invalidate("orders")
            assert not engine._exports
            assert sharded_key not in engine.registry
            # And the engine still answers afterwards (rebuild path).
            result = engine.query(
                "quantity <= 25", options=QueryOptions(backend="processes", shards=2)
            )
            assert np.array_equal(result.rids, relation.scan("quantity", "<=", 25))


class TestCodeDomainTranslation:
    def test_translated_tree_needs_no_relation(self, relation):
        expr = parse_expression(
            "quantity between 5 and 40 and (region = 1 or not region > 5)"
        )
        translated = translate_expression(expr, relation)
        index_q = BitmapIndex(
            relation.column("quantity").codes,
            cardinality=relation.column("quantity").cardinality,
        )
        index_r = BitmapIndex(
            relation.column("region").codes,
            cardinality=relation.column("region").cardinality,
        )
        stats_t = ExecutionStats()
        stats_o = ExecutionStats()
        translated_bitmap = translated.bitmap(
            None, {"quantity": index_q, "region": index_r}, stats_t
        )
        original_bitmap = expr.bitmap(
            relation, {"quantity": index_q, "region": index_r}, stats_o
        )
        assert np.array_equal(translated_bitmap.indices(), original_bitmap.indices())
        assert stats_t.ops == stats_o.ops
        assert stats_t.scans == stats_o.scans
