"""Tests for the RID-list baseline and the projection index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValueOutOfRangeError
from repro.relation.projection import ProjectionIndex
from repro.relation.rid_index import RID_BYTES, RIDListIndex

OPERATORS = ("<", "<=", "=", "!=", ">=", ">")


def _naive(values: np.ndarray, op: str, probe) -> np.ndarray:
    ops = {
        "<": values < probe,
        "<=": values <= probe,
        "=": values == probe,
        "!=": values != probe,
        ">=": values >= probe,
        ">": values > probe,
    }
    return np.nonzero(ops[op])[0]


class TestRIDListIndex:
    def test_rids_for_value(self):
        idx = RIDListIndex(np.array([5, 1, 5, 3]))
        assert idx.rids_for_value(5).tolist() == [0, 2]
        assert idx.rids_for_value(9).tolist() == []

    def test_lookup_all_operators(self, rng):
        values = rng.integers(0, 20, 300)
        idx = RIDListIndex(values)
        for op in OPERATORS:
            for probe in (-1, 0, 7, 19, 20):
                got = idx.lookup(op, probe)
                assert np.array_equal(got, _naive(values, op, probe)), (op, probe)

    def test_bytes_accounting(self, rng):
        values = rng.integers(0, 20, 300)
        idx = RIDListIndex(values)
        for op in OPERATORS:
            for probe in (0, 7, 19):
                matched = len(_naive(values, op, probe))
                assert idx.bytes_for(op, probe) == RID_BYTES * matched

    def test_size_bytes(self):
        idx = RIDListIndex(np.arange(100))
        assert idx.size_bytes == 400

    def test_cardinality(self):
        idx = RIDListIndex(np.array([3, 3, 3, 1]))
        assert idx.cardinality == 2
        assert idx.num_rows == 4

    def test_unknown_operator(self):
        idx = RIDListIndex(np.array([1, 2]))
        with pytest.raises(ValueOutOfRangeError):
            idx.lookup("~", 1)

    def test_rejects_2d(self):
        with pytest.raises(ValueOutOfRangeError):
            RIDListIndex(np.zeros((2, 2)))

    def test_float_values(self):
        idx = RIDListIndex(np.array([2.5, 1.5, 2.5]))
        assert idx.lookup("<=", 2.0).tolist() == [1]

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(0, 30), min_size=1, max_size=100),
        op=st.sampled_from(OPERATORS),
        probe=st.integers(-2, 32),
    )
    def test_lookup_matches_naive_property(self, values, op, probe):
        arr = np.array(values)
        idx = RIDListIndex(arr)
        assert np.array_equal(idx.lookup(op, probe), _naive(arr, op, probe))


class TestProjectionIndex:
    def test_lookup(self, rng):
        values = rng.integers(0, 16, 200)
        proj = ProjectionIndex(values, 16)
        for op in OPERATORS:
            got = proj.lookup(op, 7)
            assert np.array_equal(got, _naive(values, op, 7))

    def test_size(self):
        proj = ProjectionIndex(np.arange(100) % 16, 16)
        assert proj.bits_per_value == 4
        assert proj.size_bytes == (100 * 4 + 7) // 8

    def test_cardinality_inferred(self):
        proj = ProjectionIndex(np.array([0, 5, 3]))
        assert proj.cardinality == 6

    def test_binary_rows_shape(self):
        proj = ProjectionIndex(np.array([0, 1, 15]), 16)
        rows = proj.binary_rows()
        assert rows.shape == (3, 4)
        assert rows[2].tolist() == [True, True, True, True]

    def test_unknown_operator(self):
        proj = ProjectionIndex(np.array([1]))
        with pytest.raises(ValueOutOfRangeError):
            proj.lookup("~", 1)

    def test_rejects_2d(self):
        with pytest.raises(ValueOutOfRangeError):
            ProjectionIndex(np.zeros((2, 2)))

    def test_values_copied(self):
        source = np.array([1, 2, 3])
        proj = ProjectionIndex(source, 4)
        source[0] = 9
        assert proj.values[0] == 1
